// Package cluster is the multi-node robustness tier: an HTTP router that
// consistent-hashes models across several rtmap-serve nodes and keeps
// serving through node failure with bounded, measured impact.
//
// The pieces compose front to back:
//
//   - Ring: a consistent hash ring mapping model keys to an ordered list
//     of owner nodes (virtual points for balance). Node death rebalances
//     ownership along the ring — only the dead node's share moves.
//   - Health: an actively probed member table. Each node walks a
//     failure-threshold state machine (up → suspect → down → probation →
//     up); the router routes only to nodes whose state admits traffic,
//     and a node rejoining after death restarts from a clean probation
//     and breaker state.
//   - Breaker: a per-node circuit breaker (closed → open → half-open)
//     fed by proxied-attempt outcomes, so a node that fails requests
//     faster than probes notice is shed quickly and re-admitted through
//     a single trial request.
//   - Budget: a per-model retry token bucket (retries spend, accepted
//     requests earn a fraction) so retry storms cannot amplify an
//     overload, plus the per-model attempt-latency tracker whose p95
//     sets the hedge delay.
//   - Router: the HTTP front tier. Every proxied /v1/infer runs under a
//     per-request robustness policy: class-derived deadline-aware
//     attempt timeouts (dispatch.AttemptTimeouts), capped-exponential-
//     backoff retries on safe errors only (connect failure, 503, node
//     down — never after response bytes arrived), hedged attempts for
//     interactive traffic (second attempt to the next owner after the
//     model's p95 delay, first response wins, loser cancelled), and
//     graceful degradation to 503 + Retry-After when every owner of a
//     model is open or down. /metrics exports per-node health, retry/
//     hedge/breaker counters and attempt-level latency histograms;
//     route/retry/hedge spans join node-side traces through the
//     X-Rtmap-Trace header.
//   - FaultInjector: node-level fault injection at the router's
//     transport (kill, hang-without-close, slow, partition, flap),
//     shared by the rtmap-router -fault flag and the chaos harness in
//     cluster/chaos.
package cluster
