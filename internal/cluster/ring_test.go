package cluster

import (
	"fmt"
	"testing"
)

func TestRingBalanceAndDeterminism(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1"}
	r1, err := NewRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := NewRing(nodes, 0)

	counts := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("model-%d", i)
		o1 := r1.Owners(key, 2)
		o2 := r2.Owners(key, 2)
		if len(o1) != 2 || o1[0] == o1[1] {
			t.Fatalf("Owners(%q) = %v: want 2 distinct nodes", key, o1)
		}
		if o1[0] != o2[0] || o1[1] != o2[1] {
			t.Fatalf("rings disagree on %q: %v vs %v", key, o1, o2)
		}
		counts[o1[0]]++
	}
	for n, c := range counts {
		// 128 vnodes keeps shares within a loose factor of uniform.
		if c < keys/6 || c > keys/2 {
			t.Errorf("node %s owns %d/%d keys: ring badly imbalanced %v", n, c, keys, counts)
		}
	}
}

// TestRingFailoverMovesOnlyDeadArc is the consistent-hashing contract:
// when one node dies, keys it did not own keep their primary, and its
// own keys move to exactly their next owner in ring order.
func TestRingFailoverMovesOnlyDeadArc(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	r, err := NewRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	dead := "http://b:1"
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("model-%d", i)
		owners := r.Owners(key, len(nodes))
		// Simulate the router's walk with the dead node filtered.
		var surviving string
		for _, n := range owners {
			if n != dead {
				surviving = n
				break
			}
		}
		if owners[0] != dead && surviving != owners[0] {
			t.Fatalf("key %q: primary %s alive but routed to %s", key, owners[0], surviving)
		}
		if owners[0] == dead && surviving != owners[1] {
			t.Fatalf("key %q: dead primary should fail to second owner %s, got %s", key, owners[1], surviving)
		}
	}
}

func TestRingRejectsBadMembership(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty ring accepted")
	}
	if _, err := NewRing([]string{"http://a:1", "http://a:1"}, 0); err == nil {
		t.Fatal("duplicate node accepted")
	}
}

func TestRingOwnersClampsToMembership(t *testing.T) {
	r, _ := NewRing([]string{"http://a:1", "http://b:1"}, 8)
	if got := r.Owners("k", 10); len(got) != 2 {
		t.Fatalf("Owners(k, 10) = %v: want both nodes exactly once", got)
	}
	if got := r.Owners("k", 0); len(got) != 1 {
		t.Fatalf("Owners(k, 0) = %v: want the primary", got)
	}
}
