package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// NodeState is one node's position in the health state machine.
//
//	up        healthy: full traffic.
//	suspect   one or more probes failed, but fewer than FailThreshold:
//	          still routable (a blip must not shift ownership), but the
//	          router prefers other owners for hedges.
//	down      FailThreshold consecutive probe failures: not routable;
//	          ownership of its models moves along the ring.
//	probation a down node answered a probe again: routable, but one
//	          probe failure sends it straight back to down; only
//	          SuccessThreshold consecutive successes restore up.
type NodeState int

const (
	StateUp NodeState = iota
	StateSuspect
	StateDown
	StateProbation
)

// String returns the exposition name of the state.
func (s NodeState) String() string {
	switch s {
	case StateUp:
		return "up"
	case StateSuspect:
		return "suspect"
	case StateDown:
		return "down"
	case StateProbation:
		return "probation"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Routable reports whether a node in this state may receive proxied
// traffic. suspect stays routable: the failure is unconfirmed, and
// flapping ownership on a single lost probe would multiply cold model
// admissions across the cluster.
func (s NodeState) Routable() bool { return s != StateDown }

// HealthOptions configures the prober. Zero values select defaults.
type HealthOptions struct {
	// Interval between probe rounds (default 250ms). A node kill is
	// detected — state down, ownership moved — within FailThreshold
	// intervals; the retry policy masks the failure in the meantime.
	Interval time.Duration
	// Timeout per probe (default Interval, min 50ms).
	Timeout time.Duration
	// FailThreshold consecutive probe failures take a node from up via
	// suspect to down (default 3). SuccessThreshold consecutive probe
	// successes take it from probation back to up (default 2).
	FailThreshold    int
	SuccessThreshold int
	// Logf receives state-transition log lines (nil: silent).
	Logf func(format string, args ...any)
}

func (o HealthOptions) withDefaults() HealthOptions {
	if o.Interval <= 0 {
		o.Interval = 250 * time.Millisecond
	}
	if o.Timeout <= 0 {
		o.Timeout = o.Interval
	}
	if o.Timeout < 50*time.Millisecond {
		o.Timeout = 50 * time.Millisecond
	}
	if o.FailThreshold <= 0 {
		o.FailThreshold = 3
	}
	if o.SuccessThreshold <= 0 {
		o.SuccessThreshold = 2
	}
	return o
}

// member is one node's health record.
type member struct {
	state     NodeState
	failures  int // consecutive probe failures
	successes int // consecutive probe successes (probation exit counter)
	probes    int64
	probeFail int64
	lastErr   string
	lastProbe time.Time
}

// Health is the actively probed member table. Probing drives the state
// machine; the router additionally reports proxied-attempt outcomes
// (ReportAttempt) so a crashed node is confirmed down without waiting
// for the next probe round.
type Health struct {
	opts   HealthOptions
	client *http.Client
	// onRejoin, when non-nil, fires on a down → probation transition —
	// the router hooks it to reset the node's circuit breaker, so a
	// rejoining node starts from a clean slate instead of inheriting the
	// open breaker its death earned.
	onRejoin func(node string)

	mu      sync.Mutex
	members map[string]*member
	cycles  int64 // completed probe rounds

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
	started  bool
}

// NewHealth builds a member table over the node base URLs. transport,
// when non-nil, overrides the probe transport (the fault injector hooks
// in here so a "partitioned" node fails its probes too).
func NewHealth(nodes []string, opts HealthOptions, transport http.RoundTripper) *Health {
	opts = opts.withDefaults()
	h := &Health{
		opts:    opts,
		client:  &http.Client{Timeout: opts.Timeout, Transport: transport},
		members: make(map[string]*member, len(nodes)),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	for _, n := range nodes {
		h.members[n] = &member{state: StateUp}
	}
	return h
}

// SetRejoinHook registers the down→probation callback (call before Start).
func (h *Health) SetRejoinHook(fn func(node string)) { h.onRejoin = fn }

// Start launches the probe loop. Stop halts it.
func (h *Health) Start() {
	h.mu.Lock()
	h.started = true
	h.mu.Unlock()
	go func() {
		defer close(h.done)
		t := time.NewTicker(h.opts.Interval)
		defer t.Stop()
		for {
			h.probeAll()
			select {
			case <-h.stop:
				return
			case <-t.C:
			}
		}
	}()
}

// Stop terminates the probe loop and waits for it to exit (no-op when
// Start never ran — handler-only embeddings drive probes themselves).
func (h *Health) Stop() {
	h.mu.Lock()
	started := h.started
	h.mu.Unlock()
	if !started {
		return
	}
	h.stopOnce.Do(func() { close(h.stop) })
	<-h.done
}

// probeAll probes every member concurrently and applies the outcomes.
func (h *Health) probeAll() {
	h.mu.Lock()
	nodes := make([]string, 0, len(h.members))
	for n := range h.members {
		nodes = append(nodes, n)
	}
	h.mu.Unlock()

	var wg sync.WaitGroup
	for _, n := range nodes {
		wg.Add(1)
		go func(node string) {
			defer wg.Done()
			err := h.probe(node)
			h.observe(node, err == nil, err, true)
		}(n)
	}
	wg.Wait()
	h.mu.Lock()
	h.cycles++
	h.mu.Unlock()
}

// probe issues one GET /healthz. Any transport error, timeout, or
// non-200 status (a draining node answers 503) counts as a failure.
func (h *Health) probe(node string) error {
	ctx, cancel := context.WithTimeout(context.Background(), h.opts.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, node+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := h.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: HTTP %d", resp.StatusCode)
	}
	return nil
}

// ReportAttempt feeds a proxied-attempt outcome into the state machine:
// a connection-level failure (refused dial, peer reset) counts like a
// failed probe (so a crash is confirmed within FailThreshold attempts
// even between probe rounds); a success counts like a passed probe.
// HTTP-level rejections (503 from a shedding node) and attempt timeouts
// must NOT be reported here — an overloaded or slow node is alive, and
// marking it down would shift its models onto the survivors and
// overload them too.
func (h *Health) ReportAttempt(node string, ok bool, err error) {
	h.observe(node, ok, err, false)
}

// observe applies one probe or attempt outcome to the node's state
// machine. probe outcomes update the probe counters; both kinds drive
// the transitions.
func (h *Health) observe(node string, ok bool, err error, probe bool) {
	h.mu.Lock()
	m := h.members[node]
	if m == nil {
		h.mu.Unlock()
		return
	}
	if probe {
		m.probes++
		m.lastProbe = time.Now()
		if !ok {
			m.probeFail++
		}
	}
	if err != nil {
		m.lastErr = err.Error()
	}
	prev := m.state
	if ok {
		m.failures = 0
		m.successes++
		switch m.state {
		case StateSuspect:
			m.state = StateUp
		case StateDown:
			m.state = StateProbation
			m.successes = 1
		case StateProbation:
			if m.successes >= h.opts.SuccessThreshold {
				m.state = StateUp
			}
		}
	} else {
		m.successes = 0
		m.failures++
		switch m.state {
		case StateUp:
			m.state = StateSuspect
			if m.failures >= h.opts.FailThreshold {
				m.state = StateDown
			}
		case StateSuspect:
			if m.failures >= h.opts.FailThreshold {
				m.state = StateDown
			}
		case StateProbation:
			// One strike in probation: straight back down.
			m.state = StateDown
		}
	}
	cur := m.state
	failures := m.failures
	h.mu.Unlock()

	if prev != cur {
		if h.opts.Logf != nil {
			h.opts.Logf("health: node %s %s -> %s (failures %d)", node, prev, cur, failures)
		}
		if prev == StateDown && cur == StateProbation && h.onRejoin != nil {
			h.onRejoin(node)
		}
	}
}

// State returns the node's current state (down for unknown nodes, which
// keeps a typo'd node name unroutable rather than panicking).
func (h *Health) State(node string) NodeState {
	h.mu.Lock()
	defer h.mu.Unlock()
	if m := h.members[node]; m != nil {
		return m.state
	}
	return StateDown
}

// Cycles returns how many probe rounds have completed (tests and the
// bench use it to convert recovery time into health-check cycles).
func (h *Health) Cycles() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.cycles
}

// NodeHealth is one member's snapshot for /cluster and /metrics.
type NodeHealth struct {
	Node      string    `json:"node"`
	State     string    `json:"state"`
	Failures  int       `json:"consecutive_failures"`
	Probes    int64     `json:"probes"`
	ProbeFail int64     `json:"probe_failures"`
	LastError string    `json:"last_error,omitempty"`
	LastProbe time.Time `json:"last_probe"`
}

// Snapshot returns every member's health, sorted by node name.
func (h *Health) Snapshot() []NodeHealth {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]NodeHealth, 0, len(h.members))
	for n, m := range h.members {
		out = append(out, NodeHealth{
			Node: n, State: m.state.String(), Failures: m.failures,
			Probes: m.probes, ProbeFail: m.probeFail,
			LastError: m.lastErr, LastProbe: m.lastProbe,
		})
	}
	sortNodeHealth(out)
	return out
}

func sortNodeHealth(s []NodeHealth) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].Node < s[j-1].Node; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
