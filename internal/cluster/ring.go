package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is a consistent hash ring over node names. Each node contributes
// a fixed number of virtual points (hashed node|index), so ownership is
// balanced and the death of one node redistributes only that node's
// share among the survivors instead of reshuffling every model. The
// ring is immutable after construction — membership is fixed at router
// start; liveness is the health tracker's job, and Owners filters
// through it.
type Ring struct {
	points []ringPoint
	nodes  []string
}

type ringPoint struct {
	hash uint64
	node int // index into nodes
}

// DefaultVirtualNodes is the per-node virtual point count used when
// NewRing is given vnodes <= 0. 128 points keep the per-node ownership
// share within a few percent of uniform for small clusters.
const DefaultVirtualNodes = 128

// NewRing builds a ring over the given node names (router node URLs).
func NewRing(nodes []string, vnodes int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	seen := map[string]bool{}
	for _, n := range nodes {
		if seen[n] {
			return nil, fmt.Errorf("cluster: duplicate node %q", n)
		}
		seen[n] = true
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	r := &Ring{nodes: append([]string(nil), nodes...)}
	r.points = make([]ringPoint, 0, len(nodes)*vnodes)
	for ni, name := range r.nodes {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s|%d", name, v)), node: ni})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (possible in principle) break deterministically by
		// node index so every router instance agrees on ownership.
		return r.points[i].node < r.points[j].node
	})
	return r, nil
}

// Nodes returns the ring's member names in construction order.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Owners returns up to n distinct nodes owning key, in ring order
// starting at the key's position. The first element is the primary
// owner; the rest are the failover/hedge targets, which is what makes
// rebalancing automatic: when the primary is down the router's walk
// lands on exactly the node that inherits the key's arc.
func (r *Ring) Owners(key string, n int) []string {
	if n <= 0 {
		n = 1
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make([]bool, len(r.nodes))
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.node] {
			continue
		}
		seen[p.node] = true
		out = append(out, r.nodes[p.node])
	}
	return out
}

// hash64 is the ring's point/key hash: FNV-1a (stdlib-only, stable
// across processes) finished with a splitmix64 mix. Raw FNV-1a has weak
// avalanche on short, near-identical strings — exactly what node URLs
// and vnode suffixes are — and the resulting clustered points skew
// ownership shares badly; the finalizer restores uniform dispersion.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	z := h.Sum64()
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}
