package cluster

import (
	"sync"
	"time"
)

// BreakerState is one node's circuit-breaker position.
//
//	closed    attempts flow normally.
//	open      Threshold consecutive attempt failures: no attempts until
//	          Cooloff has elapsed. A request whose every owner is open
//	          (or down) is shed with 503 + Retry-After instead of
//	          hanging on a doomed dial.
//	halfOpen  Cooloff elapsed: exactly one trial attempt is admitted;
//	          its success closes the breaker, its failure re-opens it
//	          for another Cooloff.
type BreakerState int

const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

// String returns the exposition name of the state.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half_open"
	}
	return "unknown"
}

// BreakerOptions configures the per-node breakers.
type BreakerOptions struct {
	// Threshold is the consecutive-failure count that opens a breaker
	// (default 5). Cooloff is how long an open breaker rejects attempts
	// before admitting a half-open trial (default 1s).
	Threshold int
	Cooloff   time.Duration
}

func (o BreakerOptions) withDefaults() BreakerOptions {
	if o.Threshold <= 0 {
		o.Threshold = 5
	}
	if o.Cooloff <= 0 {
		o.Cooloff = time.Second
	}
	return o
}

// breaker is one node's circuit state.
type breaker struct {
	state    BreakerState
	failures int
	openedAt time.Time
	inTrial  bool // half-open: a trial attempt is in flight
}

// Breakers is the per-node circuit-breaker table.
type Breakers struct {
	opts BreakerOptions

	mu sync.Mutex
	m  map[string]*breaker

	opens  int64 // transitions to open, cumulative
	resets int64 // Reset calls (node rejoin)
}

// NewBreakers builds a breaker table for the given nodes.
func NewBreakers(nodes []string, opts BreakerOptions) *Breakers {
	b := &Breakers{opts: opts.withDefaults(), m: make(map[string]*breaker, len(nodes))}
	for _, n := range nodes {
		b.m[n] = &breaker{}
	}
	return b
}

// Allow reports whether an attempt against node may proceed right now.
// An open breaker past its cooloff moves to half-open and admits exactly
// one trial; concurrent callers during the trial are refused.
func (b *Breakers) Allow(node string, now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	br := b.m[node]
	if br == nil {
		return false
	}
	switch br.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if now.Sub(br.openedAt) < b.opts.Cooloff {
			return false
		}
		br.state = BreakerHalfOpen
		br.inTrial = true
		return true
	case BreakerHalfOpen:
		if br.inTrial {
			return false
		}
		br.inTrial = true
		return true
	}
	return false
}

// CancelTrial releases a half-open trial admission whose attempt never
// reached an outcome — budget exhaustion, backoff cancellation, a
// dropped hedge candidate, or the router's own context ending. Every
// Allow that admitted a trial must be balanced by Observe or
// CancelTrial; otherwise inTrial sticks true and the node is refused
// forever. The breaker stays half-open, so the next Allow admits a
// fresh trial.
func (b *Breakers) CancelTrial(node string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if br := b.m[node]; br != nil && br.state == BreakerHalfOpen {
		br.inTrial = false
	}
}

// Observe applies one attempt outcome. Only transport-level failures
// and node-down rejections should be reported as failures — a 503 from
// a shedding node is the node protecting itself, not the node dying;
// tripping the breaker on it would amplify the overload onto the other
// owners (the caller makes that distinction).
func (b *Breakers) Observe(node string, ok bool, now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	br := b.m[node]
	if br == nil {
		return
	}
	if ok {
		br.state = BreakerClosed
		br.failures = 0
		br.inTrial = false
		return
	}
	br.inTrial = false
	switch br.state {
	case BreakerHalfOpen:
		br.state = BreakerOpen
		br.openedAt = now
		b.opens++
	case BreakerClosed:
		br.failures++
		if br.failures >= b.opts.Threshold {
			br.state = BreakerOpen
			br.openedAt = now
			b.opens++
		}
	}
}

// Reset returns a node's breaker to the clean closed state. The health
// tracker calls it on the down → probation transition so a rejoining
// node is never punished for the failures its death accumulated.
func (b *Breakers) Reset(node string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if br := b.m[node]; br != nil {
		*br = breaker{}
		b.resets++
	}
}

// State returns the node's current breaker state (open for unknown).
func (b *Breakers) State(node string) BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if br := b.m[node]; br != nil {
		return br.state
	}
	return BreakerOpen
}

// Stats returns cumulative open transitions and rejoin resets.
func (b *Breakers) Stats() (opens, resets int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens, b.resets
}
