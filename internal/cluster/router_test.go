package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"rtmap/internal/dispatch"
	"rtmap/internal/serve"
)

// stubNode is one fake rtmap-serve backend: healthy /healthz plus a
// swappable /v1/infer handler.
type stubNode struct {
	ts    *httptest.Server
	hits  atomic.Int32
	infer atomic.Pointer[http.HandlerFunc]
}

func newStub(t *testing.T, infer http.HandlerFunc) *stubNode {
	t.Helper()
	s := &stubNode{}
	s.infer.Store(&infer)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"status":"ok"}`))
	})
	mux.HandleFunc("POST /v1/infer", func(w http.ResponseWriter, r *http.Request) {
		s.hits.Add(1)
		// Drain the body like the real server does: the stdlib server only
		// detects a client disconnect (and cancels r.Context()) once the
		// request body has been consumed.
		io.Copy(io.Discard, r.Body)
		(*s.infer.Load())(w, r)
	})
	s.ts = httptest.NewServer(mux)
	t.Cleanup(s.ts.Close)
	return s
}

func ok200(body string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, body)
	}
}

func newTestRouter(t *testing.T, opts Options, nodes ...string) (*Router, *httptest.Server) {
	t.Helper()
	opts.Nodes = nodes
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	r, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(r.Handler())
	t.Cleanup(ts.Close)
	return r, ts
}

// keyWithPrimary finds a model name whose ring primary is the given
// node. postInfer sends bare bodies (no bits/sparsity/seed), so the
// router places them at RouteKey(name, 0, nil, 0).
func keyWithPrimary(t *testing.T, r *Ring, primary string) string {
	t.Helper()
	for i := 0; i < 100000; i++ {
		k := fmt.Sprintf("model-%d", i)
		if r.Owners(RouteKey(k, 0, nil, 0), 1)[0] == primary {
			return k
		}
	}
	t.Fatalf("no key maps to %s", primary)
	return ""
}

func postInfer(t *testing.T, url, model string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	body := fmt.Sprintf(`{"model":%q,"inputs":[[1,2,3]]}`, model)
	req, err := http.NewRequest(http.MethodPost, url+"/v1/infer", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

func TestRouterProxiesAndForwardsHeaders(t *testing.T) {
	var gotClass, gotDeadline, gotTrace atomic.Value
	stub := newStub(t, func(w http.ResponseWriter, r *http.Request) {
		gotClass.Store(r.Header.Get(serve.ClassHeader))
		gotDeadline.Store(r.Header.Get(serve.DeadlineHeader))
		gotTrace.Store(r.Header.Get(serve.TraceHeader))
		ok200(`{"model":"m","results":[]}`)(w, r)
	})
	r, ts := newTestRouter(t, Options{}, stub.ts.URL)

	resp, raw := postInfer(t, ts.URL, "m", map[string]string{
		serve.ClassHeader:    "standard",
		serve.DeadlineHeader: "5000",
		serve.TraceHeader:    "cafef00dcafef00d",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, raw)
	}
	if !bytes.Contains(raw, []byte(`"results"`)) {
		t.Fatalf("body not relayed: %s", raw)
	}
	if resp.Header.Get("X-Rtmap-Node") != stub.ts.URL {
		t.Fatalf("X-Rtmap-Node = %q, want %q", resp.Header.Get("X-Rtmap-Node"), stub.ts.URL)
	}
	if gotClass.Load() != "standard" || gotTrace.Load() != "cafef00dcafef00d" {
		t.Fatalf("headers not forwarded: class=%v trace=%v", gotClass.Load(), gotTrace.Load())
	}
	// The deadline header is rewritten to the remaining budget (the node
	// reads it as ms from its own receipt), so the node must see a
	// positive value no larger than the client's 5000.
	gd, _ := gotDeadline.Load().(string)
	if v, err := strconv.ParseFloat(gd, 64); err != nil || v <= 0 || v > 5000 {
		t.Fatalf("deadline %q not rewritten to remaining budget in (0, 5000]", gd)
	}
	// The explicit trace header left route spans behind.
	var foundRoute bool
	for _, sp := range r.tracer.Snapshot() {
		if sp.Name == "route" && sp.TraceID == "cafef00dcafef00d" {
			foundRoute = true
		}
	}
	if !foundRoute {
		t.Fatal("no route span recorded for the traced request")
	}
}

func TestRouterFailsOverOnRefusedConnection(t *testing.T) {
	alive := newStub(t, ok200(`{"model":"m","results":[{"argmax":3}]}`))
	deadTS := httptest.NewServer(http.NotFoundHandler())
	deadURL := deadTS.URL
	deadTS.Close() // nothing listens: dials get ECONNREFUSED

	r, ts := newTestRouter(t, Options{}, deadURL, alive.ts.URL)
	model := keyWithPrimary(t, r.Ring(), deadURL)

	resp, raw := postInfer(t, ts.URL, model, map[string]string{serve.TraceHeader: "deadbeefdeadbeef"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failover failed: HTTP %d: %s", resp.StatusCode, raw)
	}
	if got := resp.Header.Get("X-Rtmap-Node"); got != alive.ts.URL {
		t.Fatalf("served by %q, want the surviving owner %q", got, alive.ts.URL)
	}
	_, retries, _, _, _ := r.Metrics().Counters()
	if retries != 1 {
		t.Fatalf("retries = %d, want 1", retries)
	}
	var foundRetry bool
	for _, sp := range r.tracer.Snapshot() {
		if sp.Name == "retry" && sp.TraceID == "deadbeefdeadbeef" {
			foundRetry = true
		}
	}
	if !foundRetry {
		t.Fatal("no retry span joined to the request trace")
	}
}

func TestRouterRetries503ButNotExpired(t *testing.T) {
	unavailable := newStub(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, `{"error":"draining","kind":"unavailable"}`)
	})
	alive := newStub(t, ok200(`{"model":"m","results":[]}`))
	r, ts := newTestRouter(t, Options{}, unavailable.ts.URL, alive.ts.URL)

	model := keyWithPrimary(t, r.Ring(), unavailable.ts.URL)
	resp, raw := postInfer(t, ts.URL, model, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("503 not retried: HTTP %d: %s", resp.StatusCode, raw)
	}

	// 503 kind "expired" is the request's own deadline: relay, never retry.
	expired := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, `{"error":"deadline passed","kind":"expired"}`)
	}
	h := http.HandlerFunc(expired)
	unavailable.infer.Store(&h)
	aliveHits := alive.hits.Load()
	resp, raw = postInfer(t, ts.URL, model, nil)
	if resp.StatusCode != http.StatusServiceUnavailable || !bytes.Contains(raw, []byte("expired")) {
		t.Fatalf("expired 503 mishandled: HTTP %d: %s", resp.StatusCode, raw)
	}
	if alive.hits.Load() != aliveHits {
		t.Fatal("router retried a request whose deadline already expired")
	}
}

func TestRouterNeverRetriesRelayedResponses(t *testing.T) {
	bad := newStub(t, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
		io.WriteString(w, `{"error":"boom","kind":"internal"}`)
	})
	other := newStub(t, ok200(`{"model":"m","results":[]}`))
	r, ts := newTestRouter(t, Options{}, bad.ts.URL, other.ts.URL)

	model := keyWithPrimary(t, r.Ring(), bad.ts.URL)
	resp, _ := postInfer(t, ts.URL, model, nil)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("HTTP %d, want the node's 500 relayed", resp.StatusCode)
	}
	if other.hits.Load() != 0 {
		t.Fatal("router retried after relaying a response-bearing failure")
	}
}

func TestRouterHedgesInteractiveRequests(t *testing.T) {
	slow := newStub(t, func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-time.After(2 * time.Second):
		case <-r.Context().Done():
			return
		}
		io.WriteString(w, `{"model":"m","results":[{"argmax":1}]}`)
	})
	fast := newStub(t, ok200(`{"model":"m","results":[{"argmax":2}]}`))
	r, ts := newTestRouter(t, Options{HedgeFallback: 30 * time.Millisecond}, slow.ts.URL, fast.ts.URL)

	model := keyWithPrimary(t, r.Ring(), slow.ts.URL)
	start := time.Now()
	resp, raw := postInfer(t, ts.URL, model, map[string]string{serve.ClassHeader: "interactive"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, raw)
	}
	if got := resp.Header.Get("X-Rtmap-Node"); got != fast.ts.URL {
		t.Fatalf("winner %q, want the hedged node %q", got, fast.ts.URL)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("hedge did not cut the tail: %v", elapsed)
	}
	_, _, _, hedgeWins, _ := r.Metrics().Counters()
	if hedgeWins != 1 {
		t.Fatalf("hedgeWins = %d, want 1", hedgeWins)
	}
	// Standard-class traffic must not hedge.
	fastHits := fast.hits.Load()
	fastBody := ok200(`{"model":"m","results":[]}`)
	slow.infer.Store(&fastBody)
	if resp, _ := postInfer(t, ts.URL, model, nil); resp.StatusCode != http.StatusOK {
		t.Fatal("standard request failed")
	}
	if fast.hits.Load() != fastHits {
		t.Fatal("standard-class request hedged")
	}
}

func TestRouterShedsWhenAllOwnersDown(t *testing.T) {
	a := newStub(t, ok200(`{}`))
	b := newStub(t, ok200(`{}`))
	r, ts := newTestRouter(t, Options{}, a.ts.URL, b.ts.URL)
	for _, n := range []string{a.ts.URL, b.ts.URL} {
		for i := 0; i < 3; i++ {
			r.health.observe(n, false, errors.New("probe failed"), true)
		}
		if got := r.health.State(n); got != StateDown {
			t.Fatalf("setup: %s state %v, want down", n, got)
		}
	}
	resp, raw := postInfer(t, ts.URL, "anymodel", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("HTTP %d: %s, want 503", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("cluster-level shed without Retry-After")
	}
	if a.hits.Load()+b.hits.Load() != 0 {
		t.Fatal("router proxied to a down node")
	}
	_, _, _, _, sheds := r.Metrics().Counters()
	if sheds != 1 {
		t.Fatalf("sheds = %d, want 1", sheds)
	}
}

func TestRouterRetryBudgetCapsRetries(t *testing.T) {
	always503 := func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, `{"error":"x","kind":"unavailable"}`)
	}
	a := newStub(t, always503)
	b := newStub(t, always503)
	r, ts := newTestRouter(t, Options{BudgetEarn: 0.001, BudgetBurst: 1, MaxAttempts: 3}, a.ts.URL, b.ts.URL)

	// First request spends the whole burst on its one retry...
	resp, _ := postInfer(t, ts.URL, "m", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("HTTP %d, want the relayed 503", resp.StatusCode)
	}
	hits1 := a.hits.Load() + b.hits.Load()
	if hits1 != 2 {
		t.Fatalf("first request made %d attempts, want 2 (burst 1 allows one retry)", hits1)
	}
	// ...so the second gets no retries at all.
	postInfer(t, ts.URL, "m", nil)
	if got := a.hits.Load() + b.hits.Load() - hits1; got != 1 {
		t.Fatalf("exhausted budget still allowed %d attempts, want 1", got)
	}
	_, retries, _, _, _ := r.Metrics().Counters()
	if retries != 1 {
		t.Fatalf("retries = %d, want 1", retries)
	}
}

// TestRouterRejoinResetsBreaker wires the whole regression together: a
// node dies with an open breaker, rejoins via probation, and must be
// routable with a clean breaker immediately.
func TestRouterRejoinResetsBreaker(t *testing.T) {
	a := newStub(t, ok200(`{"model":"m","results":[]}`))
	b := newStub(t, ok200(`{"model":"m","results":[]}`))
	r, ts := newTestRouter(t, Options{}, a.ts.URL, b.ts.URL)
	node := a.ts.URL

	// Death: breaker opens, health confirms down.
	for i := 0; i < 5; i++ {
		r.breakers.Observe(node, false, time.Now())
	}
	for i := 0; i < 3; i++ {
		r.health.observe(node, false, errors.New("probe failed"), true)
	}
	if r.breakers.State(node) != BreakerOpen || r.health.State(node) != StateDown {
		t.Fatal("setup: node should be down with an open breaker")
	}

	// Rejoin: one good probe moves down -> probation and fires the hook.
	r.health.observe(node, true, nil, true)
	if got := r.health.State(node); got != StateProbation {
		t.Fatalf("state %v after rejoin probe, want probation", got)
	}
	if got := r.breakers.State(node); got != BreakerClosed {
		t.Fatalf("breaker %v after rejoin, want closed (clean slate)", got)
	}

	// And the node takes traffic right away.
	model := keyWithPrimary(t, r.Ring(), node)
	resp, _ := postInfer(t, ts.URL, model, nil)
	if resp.StatusCode != http.StatusOK || a.hits.Load() == 0 {
		t.Fatalf("rejoined node not serving: HTTP %d, hits %d", resp.StatusCode, a.hits.Load())
	}
}

// TestRouterDeadlineBudgetShrinksAcrossRetries: each attempt must see
// the deadline budget that is actually left, not the client's original —
// forwarding it verbatim would restart the full budget on every retry.
func TestRouterDeadlineBudgetShrinksAcrossRetries(t *testing.T) {
	var firstDeadline, secondDeadline atomic.Value
	flaky := newStub(t, func(w http.ResponseWriter, r *http.Request) {
		firstDeadline.Store(r.Header.Get(serve.DeadlineHeader))
		time.Sleep(20 * time.Millisecond) // burn visible budget
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, `{"error":"x","kind":"unavailable"}`)
	})
	alive := newStub(t, func(w http.ResponseWriter, r *http.Request) {
		secondDeadline.Store(r.Header.Get(serve.DeadlineHeader))
		ok200(`{"model":"m","results":[]}`)(w, r)
	})
	r, ts := newTestRouter(t, Options{DisableHedge: true}, flaky.ts.URL, alive.ts.URL)

	model := keyWithPrimary(t, r.Ring(), flaky.ts.URL)
	resp, raw := postInfer(t, ts.URL, model, map[string]string{serve.DeadlineHeader: "5000"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, raw)
	}
	d1, err1 := strconv.ParseFloat(firstDeadline.Load().(string), 64)
	d2, err2 := strconv.ParseFloat(secondDeadline.Load().(string), 64)
	if err1 != nil || err2 != nil {
		t.Fatalf("unparseable forwarded deadlines %v / %v", firstDeadline.Load(), secondDeadline.Load())
	}
	if d1 <= 0 || d1 > 5000 || d2 <= 0 {
		t.Fatalf("forwarded deadlines out of range: first %g, second %g", d1, d2)
	}
	if d2 >= d1 {
		t.Fatalf("retry saw budget %gms >= first attempt's %gms; remaining budget must shrink", d2, d1)
	}
}

// TestRouterStopsRetryingPastDeadline: once the deadline is spent, the
// router must give up instead of handing later attempts the full
// class-base timeout.
func TestRouterStopsRetryingPastDeadline(t *testing.T) {
	hang := newStub(t, func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	})
	alive := newStub(t, ok200(`{"model":"m","results":[]}`))
	r, ts := newTestRouter(t, Options{DisableHedge: true}, hang.ts.URL, alive.ts.URL)

	model := keyWithPrimary(t, r.Ring(), hang.ts.URL)
	start := time.Now()
	// Standard class (10s base): the 100ms deadline must clamp the first
	// attempt and then stop the policy cold.
	resp, _ := postInfer(t, ts.URL, model, map[string]string{serve.DeadlineHeader: "100"})
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("HTTP %d, want 503 for the expired request", resp.StatusCode)
	}
	if alive.hits.Load() != 0 {
		t.Fatal("router retried after the deadline expired")
	}
	if elapsed > 2*time.Second {
		t.Fatalf("expired request held for %v; must end near its 100ms deadline", elapsed)
	}
}

// TestRouterReleasesHalfOpenTrialOnBudgetExhaustion: when the breaker
// admits a half-open trial but the retry budget refuses the attempt, the
// trial admission must be released — a leaked trial would refuse the
// node forever.
func TestRouterReleasesHalfOpenTrialOnBudgetExhaustion(t *testing.T) {
	primary := newStub(t, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, `{"error":"x","kind":"unavailable"}`)
	})
	halfOpen := newStub(t, ok200(`{"model":"m","results":[]}`))
	r, ts := newTestRouter(t, Options{DisableHedge: true, BudgetEarn: 0.001, BudgetBurst: 0.5},
		primary.ts.URL, halfOpen.ts.URL)

	// Open the second owner's breaker with failures old enough that the
	// cooloff has elapsed: the next Allow admits a half-open trial.
	past := time.Now().Add(-time.Minute)
	for i := 0; i < 5; i++ {
		r.breakers.Observe(halfOpen.ts.URL, false, past)
	}
	if r.breakers.State(halfOpen.ts.URL) != BreakerOpen {
		t.Fatal("setup: breaker should be open")
	}

	// Attempt 1 relays the primary's 503 after the retry toward the
	// half-open node is refused by the empty budget (burst 0.5 < 1).
	model := keyWithPrimary(t, r.Ring(), primary.ts.URL)
	resp, _ := postInfer(t, ts.URL, model, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("HTTP %d, want the relayed 503", resp.StatusCode)
	}
	if halfOpen.hits.Load() != 0 {
		t.Fatal("budget-refused attempt still reached the node")
	}
	// The trial admission must not have leaked: the node is admitted
	// again as soon as something asks.
	if !r.breakers.Allow(halfOpen.ts.URL, time.Now()) {
		t.Fatal("half-open trial leaked: node permanently refused after a budget-exhausted admission")
	}
}

func TestRouterAttemptTimeoutFailsOverHangs(t *testing.T) {
	hang := newStub(t, func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	})
	alive := newStub(t, ok200(`{"model":"m","results":[]}`))
	r, ts := newTestRouter(t, Options{
		DisableHedge: true,
		Timeout:      dispatch.AttemptTimeouts{Interactive: 50 * time.Millisecond},
	}, hang.ts.URL, alive.ts.URL)

	model := keyWithPrimary(t, r.Ring(), hang.ts.URL)
	start := time.Now()
	resp, raw := postInfer(t, ts.URL, model, map[string]string{serve.ClassHeader: "interactive"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, raw)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("hung node stalled the request for %v", elapsed)
	}
}
