package cluster

import (
	"sort"
	"sync"
	"time"
)

// RetryBudget is a per-model token bucket bounding retry (and hedge)
// amplification: every first attempt of a request earns EarnPerRequest
// tokens (capped at Burst), every retry or hedge spends one. With the
// default 0.1/16 parameters, sustained retries are bounded at ~10% of
// offered load — a total-outage retry storm decays to a trickle instead
// of multiplying the overload that caused it, which is the whole point
// of budgeting retries instead of counting them per request.
type RetryBudget struct {
	// EarnPerRequest tokens are credited per first attempt (default
	// 0.1); Burst caps the accumulated balance (default 16), which is
	// also the initial balance so cold-start failures can still fail
	// over.
	EarnPerRequest float64
	Burst          float64

	mu sync.Mutex
	m  map[string]*bucket
}

type bucket struct{ tokens float64 }

// NewRetryBudget builds a budget table. Zero parameters select the
// defaults (0.1 earned per request, burst 16).
func NewRetryBudget(earn, burst float64) *RetryBudget {
	if earn <= 0 {
		earn = 0.1
	}
	if burst <= 0 {
		burst = 16
	}
	return &RetryBudget{EarnPerRequest: earn, Burst: burst, m: map[string]*bucket{}}
}

// Earn credits the model's bucket for one accepted first attempt.
func (rb *RetryBudget) Earn(model string) {
	rb.mu.Lock()
	b := rb.bucketLocked(model)
	if b.tokens += rb.EarnPerRequest; b.tokens > rb.Burst {
		b.tokens = rb.Burst
	}
	rb.mu.Unlock()
}

// Spend takes one token for a retry or hedge; false means the budget is
// exhausted and the caller must give up rather than amplify.
func (rb *RetryBudget) Spend(model string) bool {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	b := rb.bucketLocked(model)
	// The epsilon absorbs float accumulation error: ten 0.1-earns sum to
	// 0.9999999999999999, which must still buy one retry.
	if b.tokens < 1-1e-9 {
		return false
	}
	if b.tokens--; b.tokens < 0 {
		b.tokens = 0
	}
	return true
}

// Balance returns the model's current token balance (tests, /cluster).
func (rb *RetryBudget) Balance(model string) float64 {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	return rb.bucketLocked(model).tokens
}

// bucketLocked returns the model's bucket, creating it with a full
// burst allowance. Called with rb.mu held.
func (rb *RetryBudget) bucketLocked(model string) *bucket {
	b := rb.m[model]
	if b == nil {
		b = &bucket{tokens: rb.Burst}
		rb.m[model] = b
	}
	return b
}

// latencyWindow tracks recent attempt latencies for one model and
// serves the p95 the hedge delay derives from. A fixed ring of samples
// with a memoized quantile: recomputing the p95 every refreshEvery
// observations keeps the per-attempt cost at one mutex and one store.
type latencyWindow struct {
	mu      sync.Mutex
	samples [128]time.Duration
	n       int // total observations
	p95     time.Duration
	scratch []time.Duration
}

const refreshEvery = 32

// observe records one attempt latency.
func (lw *latencyWindow) observe(d time.Duration) {
	lw.mu.Lock()
	lw.samples[lw.n%len(lw.samples)] = d
	lw.n++
	if lw.n%refreshEvery == 0 || lw.p95 == 0 {
		lw.refreshLocked()
	}
	lw.mu.Unlock()
}

// refreshLocked recomputes the memoized p95. Called with lw.mu held.
func (lw *latencyWindow) refreshLocked() {
	k := lw.n
	if k > len(lw.samples) {
		k = len(lw.samples)
	}
	if k == 0 {
		return
	}
	lw.scratch = append(lw.scratch[:0], lw.samples[:k]...)
	sort.Slice(lw.scratch, func(i, j int) bool { return lw.scratch[i] < lw.scratch[j] })
	// Nearest-rank p95, clamped like rtmap-load's percentile.
	i := (95*k + 99) / 100
	if i < 1 {
		i = 1
	}
	lw.p95 = lw.scratch[i-1]
}

// quantile95 returns the memoized p95 (0 until a sample exists).
func (lw *latencyWindow) quantile95() time.Duration {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.p95
}

// Latencies is the per-model attempt-latency table.
type Latencies struct {
	mu sync.Mutex
	m  map[string]*latencyWindow
}

// NewLatencies builds an empty latency table.
func NewLatencies() *Latencies { return &Latencies{m: map[string]*latencyWindow{}} }

// Observe records one successful attempt's latency for the model.
func (l *Latencies) Observe(model string, d time.Duration) {
	l.window(model).observe(d)
}

// P95 returns the model's current p95 attempt latency, or fallback when
// no samples exist yet.
func (l *Latencies) P95(model string, fallback time.Duration) time.Duration {
	if p := l.window(model).quantile95(); p > 0 {
		return p
	}
	return fallback
}

func (l *Latencies) window(model string) *latencyWindow {
	l.mu.Lock()
	defer l.mu.Unlock()
	w := l.m[model]
	if w == nil {
		w = &latencyWindow{}
		l.m[model] = w
	}
	return w
}
