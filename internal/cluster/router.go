package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"syscall"
	"time"

	"rtmap/internal/dispatch"
	"rtmap/internal/serve"
	"rtmap/internal/trace"
)

// Options configures the cluster router tier.
type Options struct {
	// Addr is the router's listen address (":8090" by default).
	Addr string
	// Nodes are the rtmap-serve base URLs ("http://127.0.0.1:8081", ...)
	// forming the cluster. Membership is fixed at start; liveness is the
	// health tracker's job.
	Nodes []string
	// VirtualNodes per member on the hash ring (0: DefaultVirtualNodes).
	VirtualNodes int

	// Health tunes the active prober; Breaker the per-node circuit
	// breakers; Timeouts the class-derived per-attempt deadlines.
	Health  HealthOptions
	Breaker BreakerOptions
	Timeout dispatch.AttemptTimeouts

	// MaxAttempts bounds total tries per request — the first attempt plus
	// retries (default 3). BackoffBase/BackoffCap shape the capped
	// exponential delay between retries (defaults 10ms/250ms).
	MaxAttempts int
	BackoffBase time.Duration
	BackoffCap  time.Duration

	// BudgetEarn/BudgetBurst parameterize the per-model retry budget
	// (defaults 0.1 token per request, burst 16).
	BudgetEarn  float64
	BudgetBurst float64

	// DisableHedge turns request hedging off. HedgeFallback is the hedge
	// delay used before a model has attempt-latency samples (default
	// 25ms); afterwards the delay is the model's observed p95.
	DisableHedge  bool
	HedgeFallback time.Duration

	// Transport overrides the proxy/probe transport; the fault-injection
	// harness hooks in here (nil: http.DefaultTransport).
	Transport http.RoundTripper

	// TraceBuf is the span ring capacity (0: trace.DefaultCapacity);
	// TraceSample traces 1-in-N headerless requests (0: header-only).
	TraceBuf    int
	TraceSample int

	// MaxBodyBytes caps a proxied request body (default 64 MiB).
	MaxBodyBytes int64

	// Logf receives router log lines (default log.Printf).
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Addr == "" {
		o.Addr = ":8090"
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 10 * time.Millisecond
	}
	if o.BackoffCap <= 0 {
		o.BackoffCap = 250 * time.Millisecond
	}
	if o.HedgeFallback <= 0 {
		o.HedgeFallback = 25 * time.Millisecond
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 64 << 20
	}
	if o.Logf == nil {
		o.Logf = log.Printf
	}
	return o
}

// Router is the cluster front tier: one HTTP server that consistent-
// hashes models across rtmap-serve nodes and wraps every proxied
// /v1/infer in the robustness policy — class-derived attempt timeouts,
// budgeted retries with capped exponential backoff, hedged interactive
// requests, per-node circuit breakers, and health-driven failover.
type Router struct {
	opts     Options
	ring     *Ring
	health   *Health
	breakers *Breakers
	budget   *RetryBudget
	lat      *Latencies
	metrics  *Metrics
	tracer   *trace.Tracer
	client   *http.Client

	mux      *http.ServeMux
	http     *http.Server
	ln       net.Listener
	draining atomic.Bool
}

// New constructs a Router (not yet listening, prober not yet started).
func New(opts Options) (*Router, error) {
	opts = opts.withDefaults()
	ring, err := NewRing(opts.Nodes, opts.VirtualNodes)
	if err != nil {
		return nil, err
	}
	transport := opts.Transport
	if transport == nil {
		transport = http.DefaultTransport
	}
	opts.Health.Logf = opts.Logf
	r := &Router{
		opts:     opts,
		ring:     ring,
		health:   NewHealth(opts.Nodes, opts.Health, transport),
		breakers: NewBreakers(opts.Nodes, opts.Breaker),
		budget:   NewRetryBudget(opts.BudgetEarn, opts.BudgetBurst),
		lat:      NewLatencies(),
		metrics:  NewMetrics(),
		tracer:   trace.New(opts.TraceBuf, opts.TraceSample, 0),
		// No client-level timeout: each attempt carries its own
		// class-derived context deadline.
		client: &http.Client{Transport: transport},
		mux:    http.NewServeMux(),
	}
	// A rejoining node (down -> probation) starts from a clean breaker
	// rather than inheriting the open circuit its death earned.
	r.health.SetRejoinHook(func(node string) {
		r.breakers.Reset(node)
		r.opts.Logf("cluster: node %s rejoined, breaker reset", node)
	})
	r.mux.HandleFunc("GET /healthz", r.handleHealth)
	r.mux.HandleFunc("POST /v1/infer", r.handleInfer)
	r.mux.HandleFunc("GET /v1/models", r.handleModels)
	r.mux.HandleFunc("GET /metrics", r.handleMetrics)
	r.mux.HandleFunc("GET /cluster", r.handleCluster)
	r.mux.HandleFunc("GET /debug/traces", r.handleTraces)
	r.http = &http.Server{Handler: r.mux}
	return r, nil
}

// Handler exposes the route table (httptest embedding).
func (r *Router) Handler() http.Handler { return r.mux }

// Health exposes the member table (tests, the chaos harness).
func (r *Router) Health() *Health { return r.health }

// Breakers exposes the circuit-breaker table (tests).
func (r *Router) Breakers() *Breakers { return r.breakers }

// Metrics exposes the router counters (tests, the bench).
func (r *Router) Metrics() *Metrics { return r.metrics }

// Ring exposes the hash ring (tests, /cluster).
func (r *Router) Ring() *Ring { return r.ring }

// Listen binds the configured address and returns the resolved one.
func (r *Router) Listen() (net.Addr, error) {
	ln, err := net.Listen("tcp", r.opts.Addr)
	if err != nil {
		return nil, err
	}
	r.ln = ln
	return ln.Addr(), nil
}

// Serve starts the health prober and blocks serving HTTP until Shutdown.
func (r *Router) Serve() error {
	if r.ln == nil {
		if _, err := r.Listen(); err != nil {
			return err
		}
	}
	r.health.Start()
	r.opts.Logf("router listening on %s (%d nodes)", r.ln.Addr(), len(r.opts.Nodes))
	if err := r.http.Serve(r.ln); err != nil && err != http.ErrServerClosed {
		return err
	}
	return nil
}

// Shutdown stops accepting requests, lets in-flight proxies finish
// within ctx, and halts the prober.
func (r *Router) Shutdown(ctx context.Context) error {
	r.draining.Store(true)
	err := r.http.Shutdown(ctx)
	r.health.Stop()
	return err
}

func (r *Router) handleHealth(w http.ResponseWriter, req *http.Request) {
	if r.draining.Load() {
		httpJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	httpJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleModels proxies the model listing from the first routable node
// (every node serves the same zoo, so one answer represents the cluster).
func (r *Router) handleModels(w http.ResponseWriter, req *http.Request) {
	for _, node := range r.ring.Nodes() {
		if !r.health.State(node).Routable() {
			continue
		}
		ctx, cancel := context.WithTimeout(req.Context(), 2*time.Second)
		proxy, err := http.NewRequestWithContext(ctx, http.MethodGet, node+"/v1/models", nil)
		if err != nil {
			cancel()
			continue
		}
		resp, err := r.client.Do(proxy)
		if err != nil {
			cancel()
			continue
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		cancel()
		if err != nil {
			continue
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Rtmap-Node", node)
		w.WriteHeader(resp.StatusCode)
		w.Write(body)
		return
	}
	shedJSON(w, "no routable node")
}

func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	r.metrics.WritePrometheus(w, r.health, r.breakers)
	fmt.Fprintf(w, "# TYPE rtmap_router_health_cycles_total counter\nrtmap_router_health_cycles_total %d\n", r.health.Cycles())
}

// clusterResponse is the /cluster member-table document.
type clusterResponse struct {
	Nodes  []clusterNode `json:"nodes"`
	Cycles int64         `json:"health_cycles"`
}

type clusterNode struct {
	NodeHealth
	Breaker string `json:"breaker"`
}

func (r *Router) handleCluster(w http.ResponseWriter, req *http.Request) {
	resp := clusterResponse{Cycles: r.health.Cycles()}
	for _, nh := range r.health.Snapshot() {
		resp.Nodes = append(resp.Nodes, clusterNode{
			NodeHealth: nh, Breaker: r.breakers.State(nh.Node).String(),
		})
	}
	httpJSON(w, http.StatusOK, resp)
}

func (r *Router) handleTraces(w http.ResponseWriter, req *http.Request) {
	spans := r.tracer.Snapshot()
	total := r.tracer.Total()
	httpJSON(w, http.StatusOK, struct {
		Spans         []trace.Span `json:"spans"`
		TotalRecorded uint64       `json:"total_recorded"`
		Dropped       uint64       `json:"dropped"`
	}{spans, total, total - uint64(len(spans))})
}

// inferProbe is the minimal decode of a proxied inference body: the
// router needs the routing key plus the SLO fields (the policy is
// deadline- and class-aware even when clients set them in the body
// rather than headers); the payload is relayed verbatim. Field names
// mirror serve.InferRequest.
type inferProbe struct {
	Model      string   `json:"model"`
	ActBits    int      `json:"act_bits"`
	Sparsity   *float64 `json:"sparsity"`
	Seed       uint64   `json:"seed"`
	Class      string   `json:"class"`
	DeadlineMS float64  `json:"deadline_ms"`
}

// maxDeadlineMS mirrors the node-side 24h deadline clamp: it keeps
// extreme client floats out of the float→Duration conversion.
const maxDeadlineMS = 24 * 60 * 60 * 1000

// RouteKey is the ring key of one model variant: the architecture name
// plus the build parameters that change its compiled artifact. Hashing
// the variant rather than the bare name keeps each variant's traffic on
// the nodes holding its artifact warm while spreading one popular
// architecture's variants across the cluster. Omitted request fields
// stay at their zero values — the key only has to be consistent for
// identical bodies, not to resolve node-side defaults.
func RouteKey(model string, actBits int, sparsity *float64, seed uint64) string {
	sp := "-"
	if sparsity != nil {
		sp = strconv.FormatFloat(*sparsity, 'g', -1, 64)
	}
	return fmt.Sprintf("%s?bits=%d&sparsity=%s&seed=%d", model, actBits, sp, seed)
}

// attemptOutcome classifies one proxied attempt for the retry policy.
type attemptOutcome int

const (
	outcomeRelay     attemptOutcome = iota // an HTTP response the client should see
	outcomeRetryable                       // safe to try another owner
	outcomeCancelled                       // our own context ended (hedge loser, client gone)
)

// proxyResult is one attempt's full outcome. Response bodies are
// buffered before relay, so "zero bytes reached the client" holds for
// every non-relayed attempt — the precondition for safe retries.
type proxyResult struct {
	node    string
	outcome attemptOutcome
	status  int           // valid when an HTTP response arrived
	header  http.Header   // ditto
	body    []byte        // ditto
	err     error         // transport error, when no response arrived
	wall    time.Duration // attempt wall time
}

func (r *Router) handleInfer(w http.ResponseWriter, req *http.Request) {
	t0 := time.Now()
	if r.draining.Load() {
		w.Header().Set("Retry-After", "1")
		httpJSON(w, http.StatusServiceUnavailable,
			errorResponse{Error: "router draining", Kind: "unavailable"})
		return
	}

	body, err := io.ReadAll(io.LimitReader(req.Body, r.opts.MaxBodyBytes+1))
	if err != nil {
		httpJSON(w, http.StatusBadRequest, errorResponse{Error: "reading body: " + err.Error(), Kind: "bad_request"})
		return
	}
	if int64(len(body)) > r.opts.MaxBodyBytes {
		httpJSON(w, http.StatusRequestEntityTooLarge,
			errorResponse{Error: "request body exceeds router limit", Kind: "bad_request"})
		return
	}
	var probe inferProbe
	if err := json.Unmarshal(body, &probe); err != nil || probe.Model == "" {
		httpJSON(w, http.StatusBadRequest,
			errorResponse{Error: "request carries no model name", Kind: "bad_request"})
		return
	}

	// Headers win over body fields, same precedence as the node's
	// parseSLO; malformed values are forwarded untouched for the node to
	// reject rather than second-guessed here.
	cs := probe.Class
	if h := req.Header.Get(serve.ClassHeader); h != "" {
		cs = h
	}
	class, _ := dispatch.ParseClass(cs)
	ms := probe.DeadlineMS
	if h := req.Header.Get(serve.DeadlineHeader); h != "" {
		// ParseFloat, not Atoi: the node accepts fractional milliseconds,
		// and the router's clamp must fire for every deadline the node
		// would enforce.
		if v, err := strconv.ParseFloat(h, 64); err == nil {
			ms = v
		}
	}
	deadline := time.Time{}
	if ms > 0 && !math.IsInf(ms, 0) && !math.IsNaN(ms) {
		if ms > maxDeadlineMS {
			ms = maxDeadlineMS
		}
		deadline = t0.Add(time.Duration(ms * float64(time.Millisecond)))
	}

	traceID := req.Header.Get(serve.TraceHeader)
	if traceID == "" && r.tracer.SampleRequest() {
		traceID = trace.NewID()
	}

	key := RouteKey(probe.Model, probe.ActBits, probe.Sparsity, probe.Seed)
	res := r.proxyWithPolicy(req.Context(), key, probe.Model, class, deadline, traceID, body, req.Header)

	wall := time.Since(t0)
	if traceID != "" {
		detail := "failed"
		if res != nil && res.outcome == outcomeRelay {
			detail = res.node
		}
		r.tracer.Record(trace.Span{
			TraceID: traceID, Name: "route", Model: probe.Model,
			Device: -1, Replica: -1, Stage: -1,
			Start: t0.UnixNano(), Dur: wall.Nanoseconds(), Detail: detail,
		})
	}

	if res == nil {
		r.metrics.ObserveShed()
		r.metrics.ObserveRequest(wall, false)
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			// The deadline ran out before any attempt produced an
			// answer: the request is expired, not the cluster dead.
			httpJSON(w, http.StatusServiceUnavailable,
				errorResponse{Error: "deadline expired before an attempt completed", Kind: "expired"})
			return
		}
		// No routable owner, or the policy gave up without a response to
		// relay: the cluster as a whole sheds.
		w.Header().Set("Retry-After", "1")
		httpJSON(w, http.StatusServiceUnavailable,
			errorResponse{Error: "no live owner for model", Kind: "unavailable"})
		return
	}
	if res.outcome != outcomeRelay {
		// Transport-level failure on the last attempt, nothing relayable.
		// No node accepted the request, so this is a clean retryable
		// rejection (503), same contract as a breaker/owner shed — the
		// router never converts an unaccepted request into a hard error.
		r.metrics.ObserveRequest(wall, false)
		w.Header().Set("Retry-After", "1")
		httpJSON(w, http.StatusServiceUnavailable,
			errorResponse{Error: fmt.Sprintf("node %s: %v", res.node, res.err), Kind: "unavailable"})
		return
	}

	ok := res.status < 400
	r.metrics.ObserveRequest(wall, ok)
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := res.header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set("X-Rtmap-Node", res.node)
	w.WriteHeader(res.status)
	w.Write(res.body)
}

// errorResponse mirrors the node-side error document so router-origin
// errors are indistinguishable in shape from node-origin ones.
type errorResponse struct {
	Error string `json:"error"`
	Kind  string `json:"kind,omitempty"`
}

// proxyWithPolicy runs the full robustness policy for one request:
// walk the key's owners in ring order, skip unroutable/broken nodes,
// retry safe failures with capped exponential backoff under the model's
// retry budget, hedge interactive first attempts. Returns nil when no
// attempt could even be made. key places the request on the ring
// (RouteKey); model names it for budgets, metrics and spans.
func (r *Router) proxyWithPolicy(ctx context.Context, key, model string, class dispatch.Class, deadline time.Time, traceID string, body []byte, hdr http.Header) *proxyResult {
	owners := r.ring.Owners(key, len(r.opts.Nodes))
	r.budget.Earn(model)

	tried := make(map[string]bool, len(owners))
	// nextOwner returns the first routable, breaker-admitted owner not
	// yet tried, in ring (preference) order.
	nextOwner := func() (string, bool) {
		now := time.Now()
		for _, n := range owners {
			if tried[n] || !r.health.State(n).Routable() {
				continue
			}
			if !r.breakers.Allow(n, now) {
				continue
			}
			return n, true
		}
		return "", false
	}

	var last *proxyResult
	for attempt := 0; attempt < r.opts.MaxAttempts; attempt++ {
		if ctx.Err() != nil {
			break
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			// Deadline spent: another attempt cannot beat it. Relay what
			// we have (or shed) instead of burning full-length attempts
			// on an already-dead request.
			break
		}
		node, ok := nextOwner()
		if !ok {
			break
		}
		tried[node] = true

		if attempt > 0 {
			if !r.budget.Spend(model) {
				// Allow admitted node (possibly a half-open trial) but no
				// attempt will run: release the trial or it leaks and the
				// node is refused forever.
				r.breakers.CancelTrial(node)
				r.metrics.ObserveBudgetExhausted()
				break
			}
			shift := attempt - 1
			if shift > 20 {
				// base<<~40 overflows Duration negative, which would slip
				// under the cap comparison and hot-loop; past 20 doublings
				// every sane base exceeds the cap anyway.
				shift = 20
			}
			backoff := r.opts.BackoffBase << shift
			if backoff <= 0 || backoff > r.opts.BackoffCap {
				backoff = r.opts.BackoffCap
			}
			if !sleepCtx(ctx, backoff) {
				r.breakers.CancelTrial(node)
				break
			}
			if !deadline.IsZero() && !time.Now().Before(deadline) {
				// Deadline passed during the backoff sleep.
				r.breakers.CancelTrial(node)
				break
			}
			r.metrics.ObserveRetry()
			if traceID != "" {
				reason := "transport"
				if last != nil && last.status != 0 {
					reason = fmt.Sprintf("http_%d", last.status)
				}
				r.tracer.Record(trace.Span{
					TraceID: traceID, Name: "retry", Model: model,
					Device: -1, Replica: -1, Stage: -1,
					Start: time.Now().UnixNano(), Dur: backoff.Nanoseconds(),
					Detail: fmt.Sprintf("attempt %d -> %s after %s", attempt+1, node, reason),
				})
			}
		}

		var res *proxyResult
		if attempt == 0 && class == dispatch.ClassInteractive && !r.opts.DisableHedge {
			res = r.hedgedAttempt(ctx, node, key, model, class, deadline, traceID, body, hdr, tried)
		} else {
			res = r.attempt(ctx, node, model, class, deadline, traceID, body, hdr)
		}
		last = res
		switch res.outcome {
		case outcomeRelay:
			return res
		case outcomeCancelled:
			return res
		}
		// outcomeRetryable: walk on to the next owner.
	}
	if last != nil && last.outcome == outcomeRetryable {
		// Exhausted attempts/budget/owners on a retryable failure: if the
		// last failure was an HTTP 503 we can still relay it (it carries
		// the node's Retry-After); a pure transport error has no response.
		if last.status != 0 {
			last.outcome = outcomeRelay
		}
		return last
	}
	return last
}

// hedgedAttempt races the primary attempt against a second owner: if
// the primary has not answered within the model's p95 attempt latency,
// a hedge fires at the next owner and the first response wins; the
// loser's context is cancelled. Only the winner is relayed, so results
// stay bit-exact regardless of which copy ran.
func (r *Router) hedgedAttempt(ctx context.Context, primary, key, model string, class dispatch.Class, deadline time.Time, traceID string, body []byte, hdr http.Header, tried map[string]bool) *proxyResult {
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make(chan *proxyResult, 2)
	go func() {
		results <- r.attempt(hctx, primary, model, class, deadline, traceID, body, hdr)
	}()

	delay := r.lat.P95(model, r.opts.HedgeFallback)
	timer := time.NewTimer(delay)
	defer timer.Stop()

	inFlight := 1
	hedgeNode := ""
	var failed *proxyResult
	for inFlight > 0 {
		select {
		case res := <-results:
			inFlight--
			if res.outcome == outcomeRelay {
				if hedgeNode != "" {
					r.metrics.ObserveHedge(res.node == hedgeNode)
				}
				return res
			}
			if res.outcome == outcomeCancelled && ctx.Err() == nil {
				// Lost the race to the other attempt's completion path;
				// keep waiting for the winner.
				continue
			}
			failed = res
		case <-timer.C:
			if hedgeNode != "" {
				continue
			}
			// Pick the next distinct routable owner; spend a budget token
			// (a hedge is a speculative retry and amplifies identically).
			now := time.Now()
			for _, n := range r.ring.Owners(key, len(r.opts.Nodes)) {
				if n == primary || tried[n] || !r.health.State(n).Routable() || !r.breakers.Allow(n, now) {
					continue
				}
				hedgeNode = n
				break
			}
			if hedgeNode == "" || !r.budget.Spend(model) {
				if hedgeNode != "" {
					// Allow admitted the candidate but the budget refused
					// the hedge: release any half-open trial admission.
					r.breakers.CancelTrial(hedgeNode)
					r.metrics.ObserveBudgetExhausted()
					hedgeNode = ""
				}
				continue
			}
			if traceID != "" {
				r.tracer.Record(trace.Span{
					TraceID: traceID, Name: "hedge", Model: model,
					Device: -1, Replica: -1, Stage: -1,
					Start: time.Now().UnixNano(), Dur: delay.Nanoseconds(),
					Detail: fmt.Sprintf("%s -> %s after %s", primary, hedgeNode, delay),
				})
			}
			tried[hedgeNode] = true
			inFlight++
			go func(n string) {
				results <- r.attempt(hctx, n, model, class, deadline, traceID, body, hdr)
			}(hedgeNode)
		}
	}
	if hedgeNode != "" {
		r.metrics.ObserveHedge(false)
	}
	return failed
}

// attempt issues one proxied POST /v1/infer against one node under the
// class-derived attempt timeout, classifies the outcome, and feeds the
// health tracker and the node's breaker.
func (r *Router) attempt(ctx context.Context, node, model string, class dispatch.Class, deadline time.Time, traceID string, body []byte, hdr http.Header) *proxyResult {
	remaining := time.Duration(0)
	if !deadline.IsZero() {
		remaining = time.Until(deadline)
	}
	timeout := r.opts.Timeout.AttemptTimeout(class, remaining)
	actx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	t0 := time.Now()
	res := &proxyResult{node: node}
	req, err := http.NewRequestWithContext(actx, http.MethodPost, node+"/v1/infer", bytes.NewReader(body))
	if err != nil {
		// Nothing was sent: release any trial admission rather than leak it.
		r.breakers.CancelTrial(node)
		res.outcome, res.err, res.wall = outcomeRetryable, err, time.Since(t0)
		return res
	}
	req.Header.Set("Content-Type", "application/json")
	if v := hdr.Get(serve.ClassHeader); v != "" {
		req.Header.Set(serve.ClassHeader, v)
	}
	if !deadline.IsZero() {
		// Forward the *remaining* budget, not the client's original: the
		// node reads the header as milliseconds from its own receipt, so
		// relaying it verbatim would restart the full budget on every
		// retry/hedge. Floor just above zero — zero reads as "no
		// deadline" node-side, negative as malformed.
		ms := float64(remaining) / float64(time.Millisecond)
		if ms <= 0 {
			ms = 0.001
		}
		req.Header.Set(serve.DeadlineHeader, strconv.FormatFloat(ms, 'f', -1, 64))
	} else if v := hdr.Get(serve.DeadlineHeader); v != "" {
		// Unparseable client value: relay verbatim so the node rejects it
		// with the authoritative 400.
		req.Header.Set(serve.DeadlineHeader, v)
	}
	if traceID != "" {
		// Forward the (possibly router-minted) trace ID so node-side
		// spans join the router's route/retry/hedge spans.
		req.Header.Set(serve.TraceHeader, traceID)
	}

	resp, err := r.client.Do(req)
	res.wall = time.Since(t0)
	if err != nil {
		res.err = err
		switch {
		case ctx.Err() != nil:
			// Our parent ended: hedge lost the race or the client is gone.
			// Not a node failure — feed nothing into health or breakers,
			// but release any half-open trial this attempt was admitted
			// under, and label it distinctly so routine hedge losses don't
			// read as node errors on dashboards.
			res.outcome = outcomeCancelled
			r.breakers.CancelTrial(node)
			r.metrics.ObserveAttempt(node, attemptCancelled, res.wall)
		case errors.Is(err, syscall.ECONNREFUSED):
			// Connect-level refusal: nobody is listening. Safe to retry
			// (the request never ran) and strong evidence the node is
			// dead — confirm it to the health tracker without waiting for
			// the next probe round.
			res.outcome = outcomeRetryable
			r.health.ReportAttempt(node, false, err)
			r.breakers.Observe(node, false, time.Now())
			r.metrics.ObserveAttempt(node, attemptRefused, res.wall)
		case errors.Is(err, context.DeadlineExceeded):
			// The attempt timeout expired with zero response bytes: a hung
			// or overwhelmed node. Inference is pure and nothing reached
			// the client, so retrying elsewhere is safe. Ambiguous as a
			// liveness signal — let the prober decide — but it does count
			// against the breaker so a black-holing node stops absorbing
			// attempts.
			res.outcome = outcomeRetryable
			r.breakers.Observe(node, false, time.Now())
			r.metrics.ObserveAttempt(node, attemptTimeout, res.wall)
		case errors.Is(err, syscall.ECONNRESET), errors.Is(err, io.EOF), errors.Is(err, io.ErrUnexpectedEOF):
			// The node's TCP stack tore the connection down mid-request: a
			// crashed process, not a slow one (the transport already retries
			// idle-connection races itself, so what reaches here is real).
			// Same death signal as a refused dial — report it so in-flight
			// traffic confirms a kill without waiting out a probe round.
			res.outcome = outcomeRetryable
			r.health.ReportAttempt(node, false, err)
			r.breakers.Observe(node, false, time.Now())
			r.metrics.ObserveAttempt(node, attemptError, res.wall)
		default:
			// Other transport failure (DNS, TLS, malformed response). No
			// response bytes were relayed, so retry is safe; too ambiguous
			// as a liveness signal — let the prober decide.
			res.outcome = outcomeRetryable
			r.breakers.Observe(node, false, time.Now())
			r.metrics.ObserveAttempt(node, attemptError, res.wall)
		}
		return res
	}
	defer resp.Body.Close()
	res.status = resp.StatusCode
	res.header = resp.Header
	res.body, err = io.ReadAll(resp.Body)
	if err != nil {
		// Response truncated mid-body. Zero bytes were relayed (we
		// buffer), so retrying is still safe.
		res.outcome, res.err, res.status = outcomeRetryable, err, 0
		res.wall = time.Since(t0)
		if errors.Is(err, syscall.ECONNRESET) || errors.Is(err, io.ErrUnexpectedEOF) {
			// Torn down mid-body: the same crash signal as above.
			r.health.ReportAttempt(node, false, err)
		}
		r.breakers.Observe(node, false, time.Now())
		r.metrics.ObserveAttempt(node, attemptError, res.wall)
		return res
	}
	res.wall = time.Since(t0)

	// Any complete HTTP response proves the node alive: report health
	// and breaker success even for rejections — a shedding node is
	// protecting itself, not dying, and opening its breaker would dump
	// its load onto the other owners.
	r.health.ReportAttempt(node, true, nil)
	r.breakers.Observe(node, true, time.Now())

	switch {
	case res.status < 400:
		res.outcome = outcomeRelay
		r.lat.Observe(model, res.wall)
		r.metrics.ObserveAttempt(node, attemptOK, res.wall)
	case res.status == http.StatusServiceUnavailable && errKind(res.body) != "expired":
		// 503 kind unavailable: the node is draining or lost capacity for
		// this model — the canonical safe retry (kind "expired" is the
		// request's own deadline talking; another node can't beat it).
		res.outcome = outcomeRetryable
		r.metrics.ObserveAttempt(node, attemptReject, res.wall)
	default:
		// 4xx (bad request, shed with Retry-After, expired): the client
		// must see it; retrying would either fail identically or defeat
		// node-side backpressure.
		res.outcome = outcomeRelay
		r.metrics.ObserveAttempt(node, attemptReject, res.wall)
	}
	return res
}

// errKind extracts the "kind" field of a node error document.
func errKind(body []byte) string {
	var e errorResponse
	if json.Unmarshal(body, &e) == nil {
		return e.Kind
	}
	return ""
}

// sleepCtx sleeps d or until ctx ends; false means the context won.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// shedJSON answers a router-level 503 with Retry-After.
func shedJSON(w http.ResponseWriter, msg string) {
	w.Header().Set("Retry-After", "1")
	httpJSON(w, http.StatusServiceUnavailable, errorResponse{Error: msg, Kind: "unavailable"})
}

// httpJSON writes v as a JSON response (the serve package's helper is
// unexported; four lines beats an export).
func httpJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
