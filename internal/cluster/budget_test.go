package cluster

import (
	"testing"
	"time"
)

func TestRetryBudgetBoundsAmplification(t *testing.T) {
	rb := NewRetryBudget(0.1, 4)
	const m = "tinycnn"

	// A fresh bucket starts at the burst allowance so cold-start
	// failures can still fail over.
	for i := 0; i < 4; i++ {
		if !rb.Spend(m) {
			t.Fatalf("spend %d refused inside the burst allowance", i)
		}
	}
	if rb.Spend(m) {
		t.Fatal("spend beyond the burst allowance succeeded")
	}

	// 10 accepted requests earn one retry token.
	for i := 0; i < 9; i++ {
		rb.Earn(m)
	}
	if rb.Spend(m) {
		t.Fatal("0.9 tokens spent as a whole token")
	}
	rb.Earn(m)
	if !rb.Spend(m) {
		t.Fatal("earned token refused")
	}

	// The balance caps at the burst.
	for i := 0; i < 1000; i++ {
		rb.Earn(m)
	}
	if got := rb.Balance(m); got != 4 {
		t.Fatalf("balance %v after heavy earning, want the burst cap 4", got)
	}

	// Budgets are per model.
	if !rb.Spend("othernet") {
		t.Fatal("fresh model shares another model's empty bucket")
	}
}

func TestLatenciesP95(t *testing.T) {
	l := NewLatencies()
	const m = "tinycnn"
	if got := l.P95(m, 25*time.Millisecond); got != 25*time.Millisecond {
		t.Fatalf("empty window p95 = %v, want the fallback", got)
	}
	// 100 samples 1..100ms: nearest-rank p95 = 95ms.
	for i := 1; i <= 100; i++ {
		l.Observe(m, time.Duration(i)*time.Millisecond)
	}
	got := l.P95(m, 0)
	if got < 90*time.Millisecond || got > 100*time.Millisecond {
		t.Fatalf("p95 = %v, want ~95ms", got)
	}
	// The window slides: a latency regression shows up after enough
	// fresh samples displace the old ones.
	for i := 0; i < 256; i++ {
		l.Observe(m, 500*time.Millisecond)
	}
	if got := l.P95(m, 0); got != 500*time.Millisecond {
		t.Fatalf("post-regression p95 = %v, want 500ms", got)
	}
}
