package cluster

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// attemptBuckets are the upper bounds (seconds) of the attempt-latency
// histogram (Prometheus classic layout, le="+Inf" implied).
var attemptBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 10,
}

// routerHist is one classic histogram over attemptBuckets (the serve
// package has its own private copy of this shape; duplicating ~40 lines
// beats exporting serving internals for the router's sake).
type routerHist struct {
	counts []int64
	sum    float64
	count  int64
}

func newRouterHist() routerHist {
	return routerHist{counts: make([]int64, len(attemptBuckets)+1)}
}

func (h *routerHist) observe(s float64) {
	i := len(attemptBuckets)
	for j, ub := range attemptBuckets {
		if s <= ub {
			i = j
			break
		}
	}
	h.counts[i]++
	h.sum += s
	h.count++
}

func (h *routerHist) clone() routerHist {
	return routerHist{counts: append([]int64(nil), h.counts...), sum: h.sum, count: h.count}
}

func (h *routerHist) write(w io.Writer, name, labels string) {
	var cum int64
	for i, ub := range attemptBuckets {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", name, labels, fmt.Sprintf("%g", ub), cum)
	}
	cum += h.counts[len(attemptBuckets)]
	if cum != h.count {
		panic(fmt.Sprintf("cluster: histogram %s{%s} +Inf count %d != observation count %d",
			name, labels, cum, h.count))
	}
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, labels, cum)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %g\n", name, h.sum)
		fmt.Fprintf(w, "%s_count %d\n", name, h.count)
		return
	}
	fmt.Fprintf(w, "%s_sum{%s} %g\n", name, labels[:len(labels)-1], h.sum)
	fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels[:len(labels)-1], h.count)
}

// attemptResultNames classify proxied attempts for the per-node counter.
const (
	attemptOK        = "ok"        // 2xx relayed
	attemptReject    = "rejected"  // 4xx/503 relayed (shed, expired, client error)
	attemptRefused   = "refused"   // connect-level failure, safe to retry
	attemptTimeout   = "timeout"   // attempt deadline expired
	attemptError     = "error"     // transport failure after the request left
	attemptCancelled = "cancelled" // our own cancellation (hedge loser, client gone) — not a node failure
)

// Metrics accumulates the router's counters for /metrics (Prometheus
// text format, hand-rolled like internal/serve: the module carries no
// dependencies).
type Metrics struct {
	mu sync.Mutex

	requests int64 // proxied /v1/infer requests
	relayedOK int64
	relayedErr int64 // requests answered with a router-generated error
	sheds    int64 // all-owners-open/down 503s

	retries         int64
	hedges          int64
	hedgeWins       int64 // hedge attempt delivered the winning response
	budgetExhausted int64

	// attempts[node][result] counts proxied attempts per node.
	attempts map[string]map[string]int64

	attemptLat routerHist // per-attempt wall time, all nodes
	requestLat routerHist // per-request wall time through the router
}

// NewMetrics returns an empty router metrics set.
func NewMetrics() *Metrics {
	return &Metrics{
		attempts:   map[string]map[string]int64{},
		attemptLat: newRouterHist(),
		requestLat: newRouterHist(),
	}
}

// ObserveRequest records one finished proxied request.
func (m *Metrics) ObserveRequest(wall time.Duration, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests++
	if ok {
		m.relayedOK++
	} else {
		m.relayedErr++
	}
	m.requestLat.observe(wall.Seconds())
}

// ObserveAttempt records one proxied attempt against one node.
func (m *Metrics) ObserveAttempt(node, result string, wall time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byNode := m.attempts[node]
	if byNode == nil {
		byNode = map[string]int64{}
		m.attempts[node] = byNode
	}
	byNode[result]++
	m.attemptLat.observe(wall.Seconds())
}

// ObserveRetry, ObserveHedge, ObserveShed and ObserveBudgetExhausted
// count the policy decisions the chaos suite and dashboards watch.
func (m *Metrics) ObserveRetry() { m.mu.Lock(); m.retries++; m.mu.Unlock() }

// ObserveHedge records a hedge attempt being launched; won reports
// (later) that the hedge delivered the winning response.
func (m *Metrics) ObserveHedge(won bool) {
	m.mu.Lock()
	if won {
		m.hedgeWins++
	} else {
		m.hedges++
	}
	m.mu.Unlock()
}

// ObserveShed counts one all-owners-unavailable 503.
func (m *Metrics) ObserveShed() { m.mu.Lock(); m.sheds++; m.mu.Unlock() }

// ObserveBudgetExhausted counts one retry/hedge suppressed by an empty
// token bucket.
func (m *Metrics) ObserveBudgetExhausted() { m.mu.Lock(); m.budgetExhausted++; m.mu.Unlock() }

// Counters returns the headline counters (tests and the bench).
func (m *Metrics) Counters() (requests, retries, hedges, hedgeWins, sheds int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.requests, m.retries, m.hedges, m.hedgeWins, m.sheds
}

// WritePrometheus renders the router series. health, breakers and extra
// contribute the gauge families owned elsewhere.
func (m *Metrics) WritePrometheus(w io.Writer, health *Health, breakers *Breakers) {
	m.mu.Lock()
	snap := struct {
		requests, relayedOK, relayedErr, sheds          int64
		retries, hedges, hedgeWins, budgetExhausted int64
	}{m.requests, m.relayedOK, m.relayedErr, m.sheds, m.retries, m.hedges, m.hedgeWins, m.budgetExhausted}
	attempts := make(map[string]map[string]int64, len(m.attempts))
	for n, byNode := range m.attempts {
		c := make(map[string]int64, len(byNode))
		for k, v := range byNode {
			c[k] = v
		}
		attempts[n] = c
	}
	attemptLat := m.attemptLat.clone()
	requestLat := m.requestLat.clone()
	m.mu.Unlock()

	fmt.Fprintf(w, "# TYPE rtmap_router_requests_total counter\nrtmap_router_requests_total %d\n", snap.requests)
	fmt.Fprintf(w, "# TYPE rtmap_router_requests_ok_total counter\nrtmap_router_requests_ok_total %d\n", snap.relayedOK)
	fmt.Fprintf(w, "# TYPE rtmap_router_requests_failed_total counter\nrtmap_router_requests_failed_total %d\n", snap.relayedErr)
	fmt.Fprintf(w, "# TYPE rtmap_router_sheds_total counter\nrtmap_router_sheds_total %d\n", snap.sheds)
	fmt.Fprintf(w, "# TYPE rtmap_router_retries_total counter\nrtmap_router_retries_total %d\n", snap.retries)
	fmt.Fprintf(w, "# TYPE rtmap_router_hedges_total counter\nrtmap_router_hedges_total %d\n", snap.hedges+snap.hedgeWins)
	fmt.Fprintf(w, "# TYPE rtmap_router_hedge_wins_total counter\nrtmap_router_hedge_wins_total %d\n", snap.hedgeWins)
	fmt.Fprintf(w, "# TYPE rtmap_router_retry_budget_exhausted_total counter\nrtmap_router_retry_budget_exhausted_total %d\n", snap.budgetExhausted)

	fmt.Fprintf(w, "# TYPE rtmap_router_attempts_total counter\n")
	nodes := make([]string, 0, len(attempts))
	for n := range attempts {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, n := range nodes {
		results := make([]string, 0, len(attempts[n]))
		for r := range attempts[n] {
			results = append(results, r)
		}
		sort.Strings(results)
		for _, r := range results {
			fmt.Fprintf(w, "rtmap_router_attempts_total{node=%q,result=%q} %d\n", n, r, attempts[n][r])
		}
	}

	if health != nil {
		fmt.Fprintf(w, "# TYPE rtmap_router_node_up gauge\n")
		snap := health.Snapshot()
		for _, nh := range snap {
			up := 0
			if nh.State != StateDown.String() {
				up = 1
			}
			fmt.Fprintf(w, "rtmap_router_node_up{node=%q,state=%q} %d\n", nh.Node, nh.State, up)
		}
		fmt.Fprintf(w, "# TYPE rtmap_router_node_probe_failures_total counter\n")
		for _, nh := range snap {
			fmt.Fprintf(w, "rtmap_router_node_probe_failures_total{node=%q} %d\n", nh.Node, nh.ProbeFail)
		}
	}
	if breakers != nil {
		opens, resets := breakers.Stats()
		fmt.Fprintf(w, "# TYPE rtmap_router_breaker_opens_total counter\nrtmap_router_breaker_opens_total %d\n", opens)
		fmt.Fprintf(w, "# TYPE rtmap_router_breaker_resets_total counter\nrtmap_router_breaker_resets_total %d\n", resets)
		if health != nil {
			fmt.Fprintf(w, "# TYPE rtmap_router_breaker_open gauge\n")
			for _, nh := range health.Snapshot() {
				open := 0
				if breakers.State(nh.Node) == BreakerOpen {
					open = 1
				}
				fmt.Fprintf(w, "rtmap_router_breaker_open{node=%q} %d\n", nh.Node, open)
			}
		}
	}

	fmt.Fprintf(w, "# TYPE rtmap_router_attempt_seconds histogram\n")
	attemptLat.write(w, "rtmap_router_attempt_seconds", "")
	fmt.Fprintf(w, "# TYPE rtmap_router_request_seconds histogram\n")
	requestLat.write(w, "rtmap_router_request_seconds", "")
}
