package cluster

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"syscall"
	"time"
)

// FaultKind is one injectable node-level failure mode, as seen from the
// router's side of the wire.
//
//	kill       connections are refused (ECONNREFUSED) — a crashed
//	           process whose port nobody listens on.
//	partition  identical wire behavior to kill, but the node itself
//	           keeps running: the harness uses the distinction to
//	           assert that healing a partition needs no node restart.
//	hang       the connection opens and then nothing ever comes back —
//	           no bytes, no close. The attempt ends only when its
//	           context (the class-derived timeout) expires, which is
//	           exactly the failure mode timeouts exist for.
//	slow       every response is delayed by the configured duration.
//	flap       the node alternates kill/healthy on a fixed period —
//	           the pathological case for naive health checking.
type FaultKind int

const (
	FaultNone FaultKind = iota
	FaultKill
	FaultPartition
	FaultHang
	FaultSlow
	FaultFlap
)

// String returns the -fault spec name of the kind.
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultKill:
		return "kill"
	case FaultPartition:
		return "partition"
	case FaultHang:
		return "hang"
	case FaultSlow:
		return "slow"
	case FaultFlap:
		return "flap"
	}
	return fmt.Sprintf("fault(%d)", int(k))
}

// Fault is one armed fault: a kind plus its parameter (Delay for slow,
// Period for flap).
type Fault struct {
	Kind   FaultKind
	Delay  time.Duration // slow: added response latency
	Period time.Duration // flap: half-cycle (up Period, down Period)
}

// ParseFault decodes a -fault value: "kill", "partition", "hang",
// "slow:50ms", "flap" or "flap:500ms".
func ParseFault(spec string) (Fault, error) {
	kind, arg, _ := strings.Cut(spec, ":")
	switch kind {
	case "kill":
		return Fault{Kind: FaultKill}, nil
	case "partition":
		return Fault{Kind: FaultPartition}, nil
	case "hang":
		return Fault{Kind: FaultHang}, nil
	case "slow":
		if arg == "" {
			arg = "50ms"
		}
		d, err := time.ParseDuration(arg)
		if err != nil || d <= 0 {
			return Fault{}, fmt.Errorf("cluster: slow fault wants a positive duration, got %q", arg)
		}
		return Fault{Kind: FaultSlow, Delay: d}, nil
	case "flap":
		if arg == "" {
			arg = "500ms"
		}
		d, err := time.ParseDuration(arg)
		if err != nil || d <= 0 {
			return Fault{}, fmt.Errorf("cluster: flap fault wants a positive period, got %q", arg)
		}
		return Fault{Kind: FaultFlap, Period: d}, nil
	}
	return Fault{}, fmt.Errorf("cluster: unknown fault %q (kill, partition, hang, slow:<dur>, flap[:<period>])", spec)
}

// FaultInjector wraps an http.RoundTripper and misbehaves for selected
// nodes. Both the router's proxy transport and the health prober route
// through the same injector, so an injected fault is indistinguishable
// from the real thing at every layer above the wire.
type FaultInjector struct {
	next http.RoundTripper

	mu     sync.Mutex
	faults map[string]faultState // key: scheme://host
}

type faultState struct {
	f     Fault
	armed time.Time
}

// NewFaultInjector wraps next (nil: http.DefaultTransport).
func NewFaultInjector(next http.RoundTripper) *FaultInjector {
	if next == nil {
		next = http.DefaultTransport
	}
	return &FaultInjector{next: next, faults: map[string]faultState{}}
}

// Set arms (or, with FaultNone, clears) a fault for a node base URL.
func (fi *FaultInjector) Set(node string, f Fault) {
	key := nodeKey(node)
	fi.mu.Lock()
	if f.Kind == FaultNone {
		delete(fi.faults, key)
	} else {
		fi.faults[key] = faultState{f: f, armed: time.Now()}
	}
	fi.mu.Unlock()
}

// errRefused mimics a dial against a dead port closely enough for
// errors.Is(err, syscall.ECONNREFUSED) to hold through url.Error
// unwrapping, exactly like a real refused connection surfaces from
// http.Client.Do.
type errRefused struct{ node string }

func (e *errRefused) Error() string {
	return fmt.Sprintf("dial tcp %s: connect: connection refused (injected)", e.node)
}
func (e *errRefused) Unwrap() error { return syscall.ECONNREFUSED }

// RoundTrip applies the node's armed fault, if any.
func (fi *FaultInjector) RoundTrip(req *http.Request) (*http.Response, error) {
	key := req.URL.Scheme + "://" + req.URL.Host
	fi.mu.Lock()
	st, ok := fi.faults[key]
	fi.mu.Unlock()
	if !ok {
		return fi.next.RoundTrip(req)
	}
	switch st.f.Kind {
	case FaultKill, FaultPartition:
		return nil, &errRefused{node: req.URL.Host}
	case FaultHang:
		// Hold the "connection" open until the caller's context gives
		// up; return its error so the attempt classifies as a timeout.
		<-req.Context().Done()
		return nil, req.Context().Err()
	case FaultSlow:
		select {
		case <-time.After(st.f.Delay):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
		return fi.next.RoundTrip(req)
	case FaultFlap:
		// Alternate healthy/refused half-cycles from the arming instant.
		phase := time.Since(st.armed) / st.f.Period
		if phase%2 == 1 {
			return nil, &errRefused{node: req.URL.Host}
		}
		return fi.next.RoundTrip(req)
	}
	return fi.next.RoundTrip(req)
}

// nodeKey canonicalizes a node base URL to its scheme://host key.
func nodeKey(node string) string {
	node = strings.TrimSuffix(node, "/")
	return node
}
