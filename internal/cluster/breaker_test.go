package cluster

import (
	"testing"
	"time"
)

func TestBreakerOpensAtThresholdAndRecovers(t *testing.T) {
	const n = "http://n:1"
	b := NewBreakers([]string{n}, BreakerOptions{Threshold: 3, Cooloff: 100 * time.Millisecond})
	now := time.Unix(1000, 0)

	for i := 0; i < 2; i++ {
		if !b.Allow(n, now) {
			t.Fatalf("closed breaker refused attempt %d", i)
		}
		b.Observe(n, false, now)
	}
	if b.State(n) != BreakerClosed {
		t.Fatalf("state %v below threshold, want closed", b.State(n))
	}
	b.Allow(n, now)
	b.Observe(n, false, now) // third consecutive failure
	if b.State(n) != BreakerOpen {
		t.Fatalf("state %v at threshold, want open", b.State(n))
	}
	if b.Allow(n, now.Add(50*time.Millisecond)) {
		t.Fatal("open breaker admitted an attempt inside the cooloff")
	}

	// Cooloff elapsed: exactly one half-open trial.
	later := now.Add(150 * time.Millisecond)
	if !b.Allow(n, later) {
		t.Fatal("cooled-off breaker refused the half-open trial")
	}
	if b.Allow(n, later) {
		t.Fatal("half-open breaker admitted a second concurrent trial")
	}
	// Trial fails: open again for another full cooloff.
	b.Observe(n, false, later)
	if b.State(n) != BreakerOpen || b.Allow(n, later.Add(50*time.Millisecond)) {
		t.Fatal("failed trial did not re-open the breaker")
	}
	// Next trial succeeds: closed, failures forgotten.
	again := later.Add(150 * time.Millisecond)
	if !b.Allow(n, again) {
		t.Fatal("second trial refused")
	}
	b.Observe(n, true, again)
	if b.State(n) != BreakerClosed {
		t.Fatalf("state %v after successful trial, want closed", b.State(n))
	}
	opens, _ := b.Stats()
	if opens != 2 {
		t.Fatalf("opens = %d, want 2", opens)
	}
}

// TestBreakerResetGivesRejoinersCleanSlate is the regression test for
// node rejoin hygiene: a node that died with an open breaker must come
// back from probation with a fully clean breaker — closed state AND a
// zero failure count, so one post-rejoin hiccup cannot instantly
// re-open it.
func TestBreakerResetGivesRejoinersCleanSlate(t *testing.T) {
	const n = "http://n:1"
	b := NewBreakers([]string{n}, BreakerOptions{Threshold: 3, Cooloff: time.Hour})
	now := time.Unix(1000, 0)
	for i := 0; i < 3; i++ {
		b.Observe(n, false, now)
	}
	if b.State(n) != BreakerOpen {
		t.Fatal("setup: breaker should be open")
	}

	b.Reset(n) // what the health tracker's rejoin hook does
	if b.State(n) != BreakerClosed {
		t.Fatalf("state %v after Reset, want closed", b.State(n))
	}
	if !b.Allow(n, now) {
		t.Fatal("reset breaker refused traffic")
	}
	// Clean slate means the failure counter restarted too: threshold-1
	// new failures must not open it.
	b.Observe(n, false, now)
	b.Observe(n, false, now)
	if b.State(n) != BreakerClosed {
		t.Fatal("Reset kept the old failure count: 2 post-rejoin failures re-opened a threshold-3 breaker")
	}
	_, resets := b.Stats()
	if resets != 1 {
		t.Fatalf("resets = %d, want 1", resets)
	}
}

// TestBreakerCancelTrialReleasesAdmission: an Allow that admitted a
// half-open trial whose attempt never produces an outcome (budget
// refusal, cancellation) must be releasable, or the node is refused
// forever.
func TestBreakerCancelTrialReleasesAdmission(t *testing.T) {
	const n = "http://n:1"
	b := NewBreakers([]string{n}, BreakerOptions{Threshold: 1, Cooloff: 100 * time.Millisecond})
	now := time.Unix(1000, 0)
	b.Observe(n, false, now) // open
	later := now.Add(150 * time.Millisecond)
	if !b.Allow(n, later) {
		t.Fatal("cooled-off breaker refused the trial")
	}
	if b.Allow(n, later) {
		t.Fatal("second concurrent trial admitted")
	}
	// The trial's attempt never ran; without CancelTrial this admission
	// would be leaked and Allow would refuse the node forever.
	b.CancelTrial(n)
	if !b.Allow(n, later) {
		t.Fatal("cancelled trial not released: node permanently refused")
	}
	b.Observe(n, true, later)
	if b.State(n) != BreakerClosed {
		t.Fatalf("state %v after successful trial, want closed", b.State(n))
	}
	// On a closed breaker CancelTrial is a no-op, not a state change.
	b.CancelTrial(n)
	if b.State(n) != BreakerClosed || !b.Allow(n, later) {
		t.Fatal("CancelTrial disturbed a closed breaker")
	}
}

func TestBreakerUnknownNodeRefused(t *testing.T) {
	b := NewBreakers([]string{"http://n:1"}, BreakerOptions{})
	if b.Allow("http://typo:1", time.Now()) {
		t.Fatal("unknown node admitted")
	}
	if b.State("http://typo:1") != BreakerOpen {
		t.Fatal("unknown node should read as open")
	}
}
