package report

import (
	"math"
	"strings"
	"testing"
)

func sampleRows() []Table2Row {
	nan := math.NaN()
	return []Table2Row{
		{
			Network: "ResNet18/ImageNet", System: "RTM-AP (unroll+CSE)", Sparsity: 0.8,
			AccFP: 100, Acc4: 98.0, Acc8: 99.0,
			Energy4UJ: 55.0, Energy8UJ: 78.6, Latency4MS: 2.46, Latency8MS: 4.10,
			Arrays: 49, AddsUnrollK: 1499, AddsCSEK: 931,
		},
		{
			Network: "ResNet18/ImageNet", System: "DNN+NeuroSim", Sparsity: nan,
			AccFP: 100, Acc4: 91.0, Acc8: 92.0,
			Energy4UJ: 104.9, Energy8UJ: 199.9, Latency4MS: 9.56, Latency8MS: 12.2,
			Arrays: 41, AddsUnrollK: nan, AddsCSEK: nan,
		},
	}
}

func TestRenderTable2(t *testing.T) {
	out := RenderTable2(sampleRows())
	for _, want := range []string{"RTM-AP", "DNN+NeuroSim", "49", "n/a", "931", "2.46"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestTable2TSVColumns(t *testing.T) {
	tsv := Table2TSV(sampleRows())
	lines := strings.Split(strings.TrimSpace(tsv), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	header := strings.Split(lines[0], "\t")
	for _, row := range lines[1:] {
		if got := len(strings.Split(row, "\t")); got != len(header) {
			t.Errorf("row has %d columns, header has %d", got, len(header))
		}
	}
}

func stackedFixture() *Stacked {
	return &Stacked{
		Title: "energy", Unit: "uJ",
		Layers:     []string{"L1", "L2"},
		Configs:    []string{"a", "b"},
		Components: []string{"x", "y"},
		Values: [][][]float64{
			{{1, 2}, {3, 4}},
			{{5, 6}, {7, 8}},
		},
	}
}

func TestStackedTotals(t *testing.T) {
	s := stackedFixture()
	tot := s.Totals()
	if tot[0][0] != 3 || tot[1][1] != 15 {
		t.Errorf("totals %v", tot)
	}
}

func TestStackedTSVAndRender(t *testing.T) {
	s := stackedFixture()
	tsv := s.TSV()
	if !strings.Contains(tsv, "layer\tconfig\tx\ty\ttotal") {
		t.Errorf("tsv header wrong:\n%s", tsv)
	}
	if !strings.Contains(tsv, "L2\tb\t7\t8\t15") {
		t.Errorf("tsv missing row:\n%s", tsv)
	}
	render := s.Render()
	if !strings.Contains(render, "L1") || !strings.Contains(render, "#") {
		t.Errorf("render missing bars:\n%s", render)
	}
}

func TestLinesTSVAndRender(t *testing.T) {
	l := &Lines{
		Title: "latency", Unit: "ms",
		Layers:  []string{"L1", "L2"},
		Configs: []string{"a", "b"},
		Values:  [][]float64{{1, 2}, {3, 4}},
	}
	tsv := l.TSV()
	if !strings.Contains(tsv, "layer\ta\tb") || !strings.Contains(tsv, "L2\t3\t4") {
		t.Errorf("lines tsv wrong:\n%s", tsv)
	}
	if !strings.Contains(l.Render(), "latency (ms)") {
		t.Error("render missing title")
	}
}
