// Package report renders the evaluation artifacts: Table II (accuracy,
// energy, latency, array and operation counts across systems) and the two
// panels of Fig. 4 (layer-by-layer energy breakdown and latency for
// ResNet-18 under NeuroSim, unroll, and unroll+CSE), as aligned text and
// as TSV for plotting.
package report
