package report

import (
	"fmt"
	"math"
	"strings"
)

// Table2Row is one row of Table II.
type Table2Row struct {
	Network  string
	System   string
	Sparsity float64 // NaN when not applicable

	AccFP, Acc4, Acc8      float64 // top-1 (teacher agreement), NaN = n/a
	Energy4UJ, Energy8UJ   float64
	Latency4MS, Latency8MS float64
	Arrays                 int
	AddsUnrollK, AddsCSEK  float64 // thousands of DFG adds/subs, NaN = n/a
}

func cell(v float64, format string) string {
	if math.IsNaN(v) {
		return "n/a"
	}
	return fmt.Sprintf(format, v)
}

// RenderTable2 renders rows as an aligned text table with the same column
// structure as the paper's Table II.
func RenderTable2(rows []Table2Row) string {
	header := []string{
		"Network / System", "Spars.",
		"FP", "Top-1 4b", "8b",
		"E/inf 4b(uJ)", "8b(uJ)",
		"Lat 4b(ms)", "8b(ms)",
		"#Arrays", "#Adds unroll(K)", "+CSE(K)",
	}
	var body [][]string
	for _, r := range rows {
		body = append(body, []string{
			r.Network + " " + r.System,
			cell(r.Sparsity, "%.2f"),
			cell(r.AccFP, "%.1f"), cell(r.Acc4, "%.1f"), cell(r.Acc8, "%.1f"),
			cell(r.Energy4UJ, "%.2f"), cell(r.Energy8UJ, "%.2f"),
			cell(r.Latency4MS, "%.2f"), cell(r.Latency8MS, "%.2f"),
			fmt.Sprintf("%d", r.Arrays),
			cell(r.AddsUnrollK, "%.0f"), cell(r.AddsCSEK, "%.0f"),
		})
	}
	return renderAligned(header, body)
}

// Table2TSV renders rows as tab-separated values.
func Table2TSV(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("network\tsystem\tsparsity\tacc_fp\tacc_4b\tacc_8b\tenergy_4b_uJ\tenergy_8b_uJ\tlatency_4b_ms\tlatency_8b_ms\tarrays\tadds_unroll_k\tadds_cse_k\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%d\t%s\t%s\n",
			r.Network, r.System,
			cell(r.Sparsity, "%.2f"),
			cell(r.AccFP, "%.1f"), cell(r.Acc4, "%.1f"), cell(r.Acc8, "%.1f"),
			cell(r.Energy4UJ, "%.3f"), cell(r.Energy8UJ, "%.3f"),
			cell(r.Latency4MS, "%.3f"), cell(r.Latency8MS, "%.3f"),
			r.Arrays,
			cell(r.AddsUnrollK, "%.1f"), cell(r.AddsCSEK, "%.1f"))
	}
	return b.String()
}

// Stacked holds per-layer, per-configuration, per-component values — the
// structure of Fig. 4's stacked energy bars.
type Stacked struct {
	Title      string
	Unit       string
	Layers     []string      // x axis (20 conv layers for ResNet-18)
	Configs    []string      // bar groups: NeuroSim, unroll, unroll+CSE
	Components []string      // stack segments
	Values     [][][]float64 // [layer][config][component]
}

// Totals returns per-layer per-config totals.
func (s *Stacked) Totals() [][]float64 {
	out := make([][]float64, len(s.Layers))
	for i := range s.Layers {
		out[i] = make([]float64, len(s.Configs))
		for j := range s.Configs {
			for _, v := range s.Values[i][j] {
				out[i][j] += v
			}
		}
	}
	return out
}

// TSV renders the stacked data for plotting.
func (s *Stacked) TSV() string {
	var b strings.Builder
	b.WriteString("layer\tconfig")
	for _, c := range s.Components {
		b.WriteString("\t" + c)
	}
	b.WriteString("\ttotal\n")
	for i, l := range s.Layers {
		for j, cfg := range s.Configs {
			fmt.Fprintf(&b, "%s\t%s", l, cfg)
			total := 0.0
			for _, v := range s.Values[i][j] {
				fmt.Fprintf(&b, "\t%.4g", v)
				total += v
			}
			fmt.Fprintf(&b, "\t%.4g\n", total)
		}
	}
	return b.String()
}

// Render prints per-layer grouped bars with component breakdown and an
// ASCII magnitude bar, readable in a terminal.
func (s *Stacked) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s)\n", s.Title, s.Unit)
	totals := s.Totals()
	maxV := 0.0
	for i := range totals {
		for j := range totals[i] {
			if totals[i][j] > maxV {
				maxV = totals[i][j]
			}
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	for i, l := range s.Layers {
		fmt.Fprintf(&b, "%-14s", l)
		for j, cfg := range s.Configs {
			bar := int(math.Round(totals[i][j] / maxV * 30))
			fmt.Fprintf(&b, " | %-10s %8.3f %s", cfg, totals[i][j], strings.Repeat("#", bar))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Lines is a per-layer line series (Fig. 4's latency panel).
type Lines struct {
	Title   string
	Unit    string
	Layers  []string
	Configs []string
	Values  [][]float64 // [layer][config]
}

// TSV renders the line series for plotting.
func (l *Lines) TSV() string {
	var b strings.Builder
	b.WriteString("layer")
	for _, c := range l.Configs {
		b.WriteString("\t" + c)
	}
	b.WriteByte('\n')
	for i, layer := range l.Layers {
		b.WriteString(layer)
		for j := range l.Configs {
			fmt.Fprintf(&b, "\t%.4g", l.Values[i][j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Render prints the series as an aligned table.
func (l *Lines) Render() string {
	header := append([]string{"layer"}, l.Configs...)
	var body [][]string
	for i, layer := range l.Layers {
		row := []string{layer}
		for j := range l.Configs {
			row = append(row, fmt.Sprintf("%.3f", l.Values[i][j]))
		}
		body = append(body, row)
	}
	return fmt.Sprintf("%s (%s)\n%s", l.Title, l.Unit, renderAligned(header, body))
}

func renderAligned(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}
