// Package rtmap is a full-stack reproduction of "Full-Stack Optimization
// for CAM-Only DNN Inference" (de Lima, Khan, Carro, Castrillon —
// DATE 2024): a compiler and simulator for ternary-weight DNN inference on
// associative processors built from racetrack-memory CAMs, together with
// the crossbar (DNN+NeuroSim-style) and DeepCAM-style baselines the paper
// compares against.
//
// The public API wraps the internal packages:
//
//   - Build* construct the paper's model zoo (ternary weights at the
//     evaluated sparsities, LSQ-style activation quantizers);
//   - Compile runs the full compilation flow of Fig. 3a (unroll, constant
//     folding, CSE, bitwidth annotation, column allocation, code
//     generation, accelerator mapping);
//   - Analyze prices a compiled network with the figures of merit of §V;
//   - RunFunctional executes the compiled AP programs bit-exactly;
//   - Table2 and Figure4 regenerate the paper's evaluation artifacts.
package rtmap

import (
	"context"
	"fmt"

	"rtmap/internal/core"
	"rtmap/internal/energy"
	"rtmap/internal/model"
	"rtmap/internal/serve"
	"rtmap/internal/sim"
	"rtmap/internal/tensor"
)

// Re-exported core types. Aliases keep the internal packages private while
// letting callers name the types they receive.
type (
	// Network is the ternary-weight network IR.
	Network = model.Network
	// ModelConfig parameterizes the model zoo builders.
	ModelConfig = model.Config
	// Compiled is a compiled network (mapping + programs + statistics).
	Compiled = core.Compiled
	// CompileConfig selects compiler options (CSE on/off, etc.).
	CompileConfig = core.Config
	// LayerPlan is the per-layer compilation result.
	LayerPlan = core.LayerPlan
	// Report is the analytic energy/latency analysis.
	Report = sim.Report
	// Params are the hardware figures of merit.
	Params = energy.Params
	// FloatTensor is an NCHW float32 tensor.
	FloatTensor = tensor.Float
	// IntTensor is an NCHW int32 code tensor.
	IntTensor = tensor.Int
	// IntTrace is a per-layer integer execution trace.
	IntTrace = model.IntTrace
	// OpCounts carries the Table II adds/subs metrics.
	OpCounts = core.OpCounts
	// CompileCache is a content-addressed store of per-layer compilation
	// artifacts; config sweeps over the same network reuse lowered layers.
	CompileCache = core.Cache
	// CompileCacheStats is a snapshot of cache hit/miss counters.
	CompileCacheStats = core.CacheStats
)

// NewCompileCache returns an empty compiled-artifact cache, for callers
// that want reuse isolated from the process-wide default.
func NewCompileCache() *CompileCache { return core.NewCache() }

// SharedCompileCache returns the process-wide cache that
// DefaultCompileConfig wires into every compile.
func SharedCompileCache() *CompileCache { return core.SharedCache }

// CompileConfigWithCache returns DefaultCompileConfig with the cache
// precedence rule every sweep entry point shares: a non-nil cache
// replaces the process-wide default, and noCache disables caching
// outright (and wins over cache).
func CompileConfigWithCache(cache *CompileCache, noCache bool) CompileConfig {
	cfg := DefaultCompileConfig()
	if cache != nil {
		cfg.Cache = cache
	}
	if noCache {
		cfg.Cache = nil
	}
	return cfg
}

// BuildResNet18 constructs the ImageNet-scale ResNet-18 of Table II.
func BuildResNet18(cfg ModelConfig) *Network { return model.ResNet18(cfg) }

// BuildVGG9 constructs the CIFAR10-scale VGG-9 of Table II.
func BuildVGG9(cfg ModelConfig) *Network { return model.VGG9(cfg) }

// BuildVGG11 constructs the CIFAR10-scale VGG-11 of Table II.
func BuildVGG11(cfg ModelConfig) *Network { return model.VGG11(cfg) }

// BuildMiniResNet18 constructs ResNet-18 at a reduced input resolution
// (identical weights and layer structure; used where full ImageNet
// resolution would make functional simulation needlessly slow).
func BuildMiniResNet18(cfg ModelConfig, h, w int) *Network {
	return model.MiniResNet18(cfg, h, w)
}

// BuildTinyCNN constructs a small sequential network (tests, quickstart).
func BuildTinyCNN(cfg ModelConfig) *Network { return model.TinyCNN(cfg) }

// BuildTinyResNet constructs a small residual network.
func BuildTinyResNet(cfg ModelConfig) *Network { return model.TinyResNet(cfg) }

// DefaultModelConfig returns the headline model configuration
// (4-bit activations, 0.8 sparsity).
func DefaultModelConfig() ModelConfig { return model.DefaultConfig() }

// DefaultCompileConfig returns the paper's unroll+CSE compiler setup.
func DefaultCompileConfig() CompileConfig { return core.DefaultConfig() }

// DefaultParams returns the figures of merit of §V.
func DefaultParams() Params { return energy.Default() }

// Compile runs the full compilation flow on net.
func Compile(net *Network, cfg CompileConfig) (*Compiled, error) {
	return core.Compile(net, cfg)
}

// Analyze prices a compiled network on the RTM-AP cost model.
func Analyze(c *Compiled) *Report { return sim.Analyze(c) }

// CountOps computes the Table II "#Adds/Subs" metrics (unroll vs
// unroll+CSE) at the arithmetic level. Results are memoized per layer in
// the shared compile cache.
func CountOps(net *Network) (OpCounts, error) {
	return core.CountOps(net, true, core.SharedCache)
}

// RunFunctional executes the compiled network's AP programs bit-exactly on
// the word-level machine (requires CompileConfig.KeepPrograms) and returns
// the integer trace; it must equal Network.ForwardInt exactly.
func RunFunctional(c *Compiled, in *FloatTensor) (*IntTrace, error) {
	return sim.ForwardAP(c, in)
}

// RunFunctionalBatch executes a batch of inputs through the compiled
// network's AP programs in one engine pass: every (strip, tile,
// row-group) program is interpreted once with all items' im2col rows
// laid side by side, amortizing program interpretation the same way the
// CAM array amortizes one program over many rows. Each returned trace is
// bit-identical to RunFunctional on the corresponding input (requires
// CompileConfig.KeepPrograms).
func RunFunctionalBatch(c *Compiled, ins []*FloatTensor) ([]*IntTrace, error) {
	return sim.ForwardAPBatch(c, ins)
}

// RunFunctionalBaseline executes one input on the retained pre-ExecPlan
// interpreter (a freshly allocated word machine per strip, tile and row
// group). It exists for two reasons: as the measured baseline of the
// rtmap-bench -exec engine sweep, and as an independent oracle the
// batched engine is tested against — two interpreters of the same
// programs must agree bit for bit.
func RunFunctionalBaseline(c *Compiled, in *FloatTensor) (*IntTrace, error) {
	return sim.ForwardAPBaseline(c, in)
}

// Calibrate fits all activation quantizers of net on calibration inputs.
func Calibrate(net *Network, inputs []*FloatTensor) error {
	return model.Calibrate(net, inputs)
}

// Verify compiles net with programs retained, runs both the AP functional
// path and the software reference on the given inputs, and returns an
// error if any layer output differs by a single bit — the paper's
// "retaining software accuracy" property.
func Verify(net *Network, cfg CompileConfig, inputs []*FloatTensor) error {
	cfg.KeepPrograms = true
	c, err := core.Compile(net, cfg)
	if err != nil {
		return err
	}
	for n, in := range inputs {
		if err := VerifyInput(c, in); err != nil {
			return fmt.Errorf("rtmap: input %d: %w", n, err)
		}
	}
	return nil
}

// VerifyInput checks one input against the software reference on an
// already-compiled network (CompileConfig.KeepPrograms required): it runs
// the AP functional path and reports the first layer whose output differs
// by a single bit. Callers that verify many inputs compile once and call
// this per input (rtmap-sim's per-input verdicts work this way).
func VerifyInput(c *Compiled, in *FloatTensor) error {
	ref, err := c.Net.ForwardInt(in)
	if err != nil {
		return err
	}
	got, err := sim.ForwardAP(c, in)
	if err != nil {
		return err
	}
	for i := range c.Net.Layers {
		if !got.Outputs[i].Equal(ref.Outputs[i]) {
			return fmt.Errorf("layer %d (%s) diverges from software reference",
				i, c.Net.Layers[i].Name)
		}
	}
	return nil
}

// Endurance estimates the device lifetime under continuous inference
// (§V-C: the paper estimates ≈31 years for ResNet-18).
func Endurance(c *Compiled, rep *Report) sim.EnduranceReport {
	return sim.Endurance(c, rep)
}

// AnalyzeBatch prices a batch of b back-to-back inferences of an analyzed
// network on one device under the pipelined-load model (the serving
// layer's unit of dispatch): the first sample pays the full latency, each
// further sample only max(compute, load) per layer, and energy scales
// linearly.
func AnalyzeBatch(rep *Report, b int) BatchReport { return sim.AnalyzeBatch(rep, b) }

// ReplicatedBatchReport prices a batch load-balanced across device-
// disjoint replicas (the serving layer's data-parallel axis).
type ReplicatedBatchReport = sim.ReplicatedBatchReport

// AnalyzeReplicatedBatch prices b samples dispatched across r replicas of
// an analyzed network, each replica on its own device: the batch finishes
// when the largest ceil(b/r) share does, the aggregate steady-state
// inter-sample interval divides by r, and energy scales with the sample
// count alone. r=1 degenerates to AnalyzeBatch.
func AnalyzeReplicatedBatch(rep *Report, b, r int) ReplicatedBatchReport {
	return sim.AnalyzeReplicatedBatch(rep, b, r)
}

// Pipeline sharding: partitioning a compiled plan into contiguous layer
// ranges and pricing/executing them as a software pipeline across the
// device fleet.
type (
	// ShardPlan partitions a compiled network into contiguous pipeline
	// stages with per-boundary activation transfer sets.
	ShardPlan = core.ShardPlan
	// StageRange is one stage of a ShardPlan.
	StageRange = core.StageRange
	// PipelineReport prices a sharded plan as a software pipeline
	// (per-stage fill/marginal latency, transfer cost, bottleneck).
	PipelineReport = sim.PipelineReport
	// StageReport is the per-stage entry of a PipelineReport.
	StageReport = sim.StageReport
)

// Partition splits a compiled plan into (up to) k contiguous stages
// balanced on the analytic per-layer latency of rep, minimizing the
// bottleneck stage (exact dynamic program). k clamps to the layer count.
func Partition(c *Compiled, rep *Report, k int) (*ShardPlan, error) {
	costs := make([]float64, len(rep.Layers))
	for i, lr := range rep.Layers {
		costs[i] = lr.LatencyNS
	}
	return core.Partition(c, k, costs)
}

// AnalyzePipeline prices a sharded plan as a software pipeline: stage
// fill and steady-state latencies, inter-stage activation transfer cost
// from the movement model, and steady-state throughput set by the
// bottleneck stage. For a one-stage plan it matches AnalyzeBatch.
func AnalyzePipeline(c *Compiled, rep *Report, sp *ShardPlan) (*PipelineReport, error) {
	return sim.AnalyzePipeline(c, rep, sp)
}

// AnalyzePipelineBatch prices b samples streamed through the pipeline:
// fill once, then one sample per bottleneck interval; energy scales
// linearly (including inter-stage transfers).
func AnalyzePipelineBatch(pr *PipelineReport, b int) BatchReport {
	return sim.AnalyzePipelineBatch(pr, b)
}

// RunFunctionalSharded executes the compiled network stage by stage under
// the shard plan, each stage isolated to the activations its predecessor
// shipped (requires CompileConfig.KeepPrograms). The trace is bit-identical
// to RunFunctional for every plan.
func RunFunctionalSharded(c *Compiled, sp *ShardPlan, in *FloatTensor) (*IntTrace, error) {
	return sim.ForwardAPSharded(c, sp, in)
}

// Serving layer: a concurrent HTTP/JSON inference server over the
// compiler and the simulated AP device fleet (internal/serve).
type (
	// ServeOptions configures the inference server (listen address,
	// device-fleet size, micro-batching knobs, registry capacity,
	// pipeline sharding, data-parallel replication, fault injection).
	ServeOptions = serve.Options
	// InferenceServer is the batched multi-tenant inference server.
	InferenceServer = serve.Server
	// BatchReport is the simulated cost of a batch dispatch.
	BatchReport = sim.BatchReport
)

// NewInferenceServer constructs an inference server (not yet listening).
// Use Listen/Serve to run it, Handler() to embed it, and Shutdown for a
// graceful drain.
func NewInferenceServer(opts ServeOptions) *InferenceServer { return serve.New(opts) }

// Serve runs the inference server until ctx is cancelled, then drains it
// gracefully (in-flight requests finish before the fleet winds down).
func Serve(ctx context.Context, opts ServeOptions) error {
	s := serve.New(opts)
	if _, err := s.Listen(); err != nil {
		return err
	}
	errc := make(chan error, 1)
	go func() { errc <- s.Serve() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		if err := s.Shutdown(context.Background()); err != nil {
			return err
		}
		return <-errc
	}
}
