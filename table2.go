package rtmap

import (
	"fmt"
	"math"

	"rtmap/internal/core"
	"rtmap/internal/deepcam"
	"rtmap/internal/model"
	"rtmap/internal/report"
	"rtmap/internal/sim"
	"rtmap/internal/workload"
	"rtmap/internal/xbar"
)

// Table2Row is one row of the regenerated Table II.
type Table2Row = report.Table2Row

// Table2Options controls the Table II regeneration.
type Table2Options struct {
	// Seed drives synthetic weight generation and evaluation data.
	Seed uint64
	// AccuracySamples is the evaluation-set size for the top-1 agreement
	// columns; 0 skips the (slow) accuracy measurements.
	AccuracySamples int
	// CalibSamples is the number of calibration inputs per network.
	CalibSamples int
	// Networks restricts the run ("resnet18", "vgg9", "vgg11"); empty
	// means all three, as in the paper.
	Networks []string
	// Progress, when non-nil, receives status lines.
	Progress func(string)
	// Cache overrides the compiled-artifact cache consulted by every
	// compile of the run; nil uses the process-wide shared cache.
	Cache *CompileCache
	// NoCache disables artifact caching for the run entirely.
	NoCache bool
	// specs substitutes the network list (tests run the full Table II
	// pipeline on small models through this seam).
	specs []netSpec
}

// DefaultTable2Options mirrors the paper's table (accuracy columns on).
func DefaultTable2Options() Table2Options {
	return Table2Options{Seed: 1, AccuracySamples: 40, CalibSamples: 3}
}

// Table2Result is the regenerated table plus renderings.
type Table2Result struct {
	Rows []Table2Row
}

// Text renders the aligned text table.
func (t *Table2Result) Text() string { return report.RenderTable2(t.Rows) }

// TSV renders tab-separated values.
func (t *Table2Result) TSV() string { return report.Table2TSV(t.Rows) }

func nan() float64 { return math.NaN() }

type netSpec struct {
	key        string
	display    string
	build      func(model.Config) *Network
	sparsities []float64
	// accuracy substitution: network used for agreement runs (full-size
	// functional inference at ImageNet resolution is pointlessly slow in
	// a unit-level harness; layer structure and weights are identical).
	accBuild func(model.Config) *Network
	accNote  string
	deepCAM  bool
}

func table2Specs() []netSpec {
	return []netSpec{
		{
			key: "resnet18", display: "ResNet18/ImageNet",
			build:      model.ResNet18,
			sparsities: []float64{0.8},
			accBuild:   func(c model.Config) *Network { return model.MiniResNet18(c, 56, 56) },
		},
		{
			key: "vgg9", display: "VGG-9/CIFAR10",
			build:      model.VGG9,
			sparsities: []float64{0.85, 0.9},
			accBuild:   model.VGG9,
		},
		{
			key: "vgg11", display: "VGG-11/CIFAR10",
			build:      model.VGG11,
			sparsities: []float64{0.85, 0.9},
			accBuild:   model.VGG11,
			deepCAM:    true,
		},
	}
}

// Table2 regenerates Table II: for every network/sparsity it compiles and
// prices the RTM-AP `unroll+CSE` configuration at 4- and 8-bit
// activations, counts DFG adds/subs for both compiler configurations,
// prices the DNN+NeuroSim crossbar baseline, prices DeepCAM on VGG-11, and
// (optionally) measures top-1 teacher agreement for every system.
func Table2(opt Table2Options) (*Table2Result, error) {
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	if opt.CalibSamples <= 0 {
		opt.CalibSamples = 3
	}
	progress := opt.Progress
	if progress == nil {
		progress = func(string) {}
	}
	want := map[string]bool{}
	for _, n := range opt.Networks {
		want[n] = true
	}
	res := &Table2Result{}

	specs := opt.specs
	if specs == nil {
		specs = table2Specs()
	}
	for _, spec := range specs {
		if len(want) > 0 && !want[spec.key] {
			continue
		}
		for si, sp := range spec.sparsities {
			progress(fmt.Sprintf("%s sparsity %.2f: compiling RTM-AP", spec.display, sp))
			row, net4, err := rtmAPRow(spec, sp, opt)
			if err != nil {
				return nil, err
			}
			if opt.AccuracySamples > 0 {
				progress(fmt.Sprintf("%s sparsity %.2f: measuring agreement", spec.display, sp))
				if err := fillAccuracy(&row, spec, sp, opt, nil); err != nil {
					return nil, err
				}
			}
			res.Rows = append(res.Rows, row)

			// Baseline rows once per network (the paper lists them once).
			if si == 0 {
				progress(spec.display + ": crossbar baseline")
				xb := xbarRow(spec, net4, opt)
				if opt.AccuracySamples > 0 {
					if err := fillAccuracy(&xb, spec, sp, opt, adcForwarder); err != nil {
						return nil, err
					}
				}
				res.Rows = append(res.Rows, xb)
				if spec.deepCAM {
					progress(spec.display + ": DeepCAM baseline")
					dc := deepCAMRow(spec, net4, opt)
					if opt.AccuracySamples > 0 {
						if err := fillAccuracy(&dc, spec, sp, opt, hashForwarder); err != nil {
							return nil, err
						}
					}
					res.Rows = append(res.Rows, dc)
				}
			}
		}
	}
	return res, nil
}

func rtmAPRow(spec netSpec, sparsity float64, opt Table2Options) (Table2Row, *Network, error) {
	row := Table2Row{
		Network: spec.display, System: "RTM-AP (unroll+CSE)",
		Sparsity: sparsity,
		AccFP:    nan(), Acc4: nan(), Acc8: nan(),
	}
	var net4 *Network
	cfg := CompileConfigWithCache(opt.Cache, opt.NoCache)
	for _, bits := range []int{4, 8} {
		mc := model.Config{ActBits: bits, Sparsity: sparsity, Seed: opt.Seed}
		net := spec.build(mc)
		if bits == 4 {
			net4 = net
		}
		comp, err := core.Compile(net, cfg)
		if err != nil {
			return row, nil, err
		}
		rep := sim.Analyze(comp)
		if bits == 4 {
			row.Energy4UJ = rep.EnergyUJ()
			row.Latency4MS = rep.LatencyMS()
			row.Arrays = comp.PoolArrays
		} else {
			row.Energy8UJ = rep.EnergyUJ()
			row.Latency8MS = rep.LatencyMS()
		}
	}
	oc, err := core.CountOps(net4, true, cfg.Cache)
	if err != nil {
		return row, nil, err
	}
	row.AddsUnrollK = float64(oc.Unroll) / 1e3
	row.AddsCSEK = float64(oc.CSE) / 1e3
	return row, net4, nil
}

func xbarRow(spec netSpec, net4 *Network, opt Table2Options) Table2Row {
	par := xbar.Default()
	r4 := xbar.Analyze(net4, par, 4)
	r8 := xbar.Analyze(net4, par, 8)
	return Table2Row{
		Network: spec.display, System: "DNN+NeuroSim",
		Sparsity: nan(),
		AccFP:    nan(), Acc4: nan(), Acc8: nan(),
		Energy4UJ: r4.EnergyUJ(), Energy8UJ: r8.EnergyUJ(),
		Latency4MS: r4.LatencyMS(), Latency8MS: r8.LatencyMS(),
		Arrays:      r4.Arrays,
		AddsUnrollK: nan(), AddsCSEK: nan(),
	}
}

func deepCAMRow(spec netSpec, net4 *Network, opt Table2Options) Table2Row {
	r := deepcam.Analyze(net4, deepcam.Default())
	return Table2Row{
		Network: spec.display, System: "DeepCAM",
		Sparsity: nan(),
		AccFP:    nan(), Acc4: nan(), Acc8: nan(),
		Energy4UJ: r.EnergyUJ(), Energy8UJ: nan(),
		Latency4MS: r.LatencyMS(), Latency8MS: nan(),
		Arrays:      r.Arrays,
		AddsUnrollK: nan(), AddsCSEK: nan(),
	}
}

// forwarderFor builds the system-specific execution path for agreement
// measurements; nil means the exact RTM-AP/software-integer path.
type forwarderMaker func(net *Network, seed uint64) workload.Forwarder

func adcForwarder(net *Network, seed uint64) workload.Forwarder {
	par := xbar.Default()
	return func(in *FloatTensor) (*IntTensor, error) {
		tr, err := xbar.ForwardADC(net, in, par)
		if err != nil {
			return nil, err
		}
		return tr.Logits(), nil
	}
}

func hashForwarder(net *Network, seed uint64) workload.Forwarder {
	par := deepcam.Default()
	return func(in *FloatTensor) (*IntTensor, error) {
		tr, err := deepcam.ForwardHash(net, in, par, seed)
		if err != nil {
			return nil, err
		}
		return tr.Logits(), nil
	}
}

// fillAccuracy measures top-1 teacher agreement (FP = 100 by definition;
// the paper's accuracy deltas map onto agreement drops — see
// EXPERIMENTS.md).
func fillAccuracy(row *Table2Row, spec netSpec, sparsity float64, opt Table2Options,
	mk forwarderMaker) error {
	for _, bits := range []int{4, 8} {
		mc := model.Config{ActBits: bits, Sparsity: sparsity, Seed: opt.Seed}
		net := spec.accBuild(mc)
		cal := workload.Inputs(net.InputShape, opt.CalibSamples, opt.Seed+77)
		if err := model.Calibrate(net, cal); err != nil {
			return err
		}
		inputs := workload.Inputs(net.InputShape, opt.AccuracySamples, opt.Seed+123)
		ds, err := workload.Teacher(net, inputs)
		if err != nil {
			return err
		}
		fw := workload.IntReference(net)
		if mk != nil {
			fw = mk(net, opt.Seed)
		}
		agree, err := ds.Agreement(fw)
		if err != nil {
			return err
		}
		if bits == 4 {
			row.Acc4 = agree
		} else {
			row.Acc8 = agree
		}
	}
	row.AccFP = 100 // teacher self-agreement
	return nil
}
