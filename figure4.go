package rtmap

import (
	"fmt"

	"rtmap/internal/core"
	"rtmap/internal/model"
	"rtmap/internal/report"
	"rtmap/internal/sim"
	"rtmap/internal/xbar"
)

// Figure4Options controls the layer-by-layer ResNet-18 comparison.
type Figure4Options struct {
	Seed     uint64
	ActBits  int     // the paper plots the 4-bit configuration
	Sparsity float64 // 0.8 in the paper
	Progress func(string)
	// BuildNet overrides the network under comparison (the paper uses
	// ResNet-18); tests substitute small models here.
	BuildNet func(model.Config) *Network
	// Cache overrides the compiled-artifact cache; nil uses the
	// process-wide shared cache. NoCache disables caching for the run.
	Cache   *CompileCache
	NoCache bool
}

// DefaultFigure4Options mirrors the paper's Fig. 4 setup.
func DefaultFigure4Options() Figure4Options {
	return Figure4Options{Seed: 1, ActBits: 4, Sparsity: 0.8}
}

// Figure4Result holds both panels of Fig. 4.
type Figure4Result struct {
	// Energy is the stacked per-layer energy comparison
	// (NeuroSim vs unroll vs unroll+CSE) over the 20 conv layers.
	Energy *report.Stacked
	// Latency is the per-layer latency comparison.
	Latency *report.Lines
}

// Figure4 regenerates both panels of Fig. 4 for ResNet-18: the
// layer-by-layer energy breakdown (with the contributions of peripherals,
// accumulation, DFG/compute, data movement and shifts) and the
// layer-by-layer latency, for DNN+NeuroSim and the two RTM-AP compiler
// configurations.
func Figure4(opt Figure4Options) (*Figure4Result, error) {
	if opt.ActBits == 0 {
		opt.ActBits = 4
	}
	if opt.Sparsity == 0 {
		opt.Sparsity = 0.8
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	progress := opt.Progress
	if progress == nil {
		progress = func(string) {}
	}

	mc := model.Config{ActBits: opt.ActBits, Sparsity: opt.Sparsity, Seed: opt.Seed}
	build := opt.BuildNet
	if build == nil {
		build = model.ResNet18
	}
	net := build(mc)

	progress("compiling unroll+CSE")
	cfgCSE := CompileConfigWithCache(opt.Cache, opt.NoCache)
	compCSE, err := core.Compile(net, cfgCSE)
	if err != nil {
		return nil, err
	}
	progress("compiling unroll")
	cfgUn := cfgCSE
	cfgUn.CSE = false
	compUn, err := core.Compile(net, cfgUn)
	if err != nil {
		return nil, err
	}
	repCSE := sim.Analyze(compCSE)
	repUn := sim.Analyze(compUn)

	progress("pricing crossbar baseline")
	xb := xbar.Analyze(net, xbar.Default(), opt.ActBits)

	// Conv layers only (20 for ResNet-18; the classifier is excluded as
	// in the paper's 20-layer axis).
	convCSE := onlyConvs(repCSE)
	convUn := onlyConvs(repUn)
	convXB := onlyConvLayers(net, xb)
	n := len(convCSE)
	if len(convUn) != n || len(convXB) != n {
		return nil, fmt.Errorf("rtmap: layer count mismatch: %d/%d/%d", n, len(convUn), len(convXB))
	}

	configs := []string{"NeuroSim", "unroll", "unroll+CSE"}
	components := []string{"compute", "accumulation", "movement", "peripherals", "shifts"}
	res := &Figure4Result{
		Energy: &report.Stacked{
			Title: "Fig. 4 (top): per-layer energy, ResNet-18", Unit: "uJ",
			Configs: configs, Components: components,
		},
		Latency: &report.Lines{
			Title: "Fig. 4 (bottom): per-layer latency, ResNet-18", Unit: "ms",
			Configs: configs,
		},
	}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("L%02d %s", i+1, convCSE[i].Plan.Name)
		res.Energy.Layers = append(res.Energy.Layers, name)
		res.Latency.Layers = append(res.Latency.Layers, name)

		xbE := convXB[i].Energy
		res.Energy.Values = append(res.Energy.Values, [][]float64{
			{
				(xbE.ADCPJ + xbE.CrossbarPJ) / 1e6,
				xbE.AccumPJ / 1e6,
				xbE.MovePJ / 1e6,
				xbE.PeriphPJ / 1e6,
				0,
			},
			rtmComponentsUJ(convUn[i]),
			rtmComponentsUJ(convCSE[i]),
		})
		res.Latency.Values = append(res.Latency.Values, []float64{
			convXB[i].LatencyNS / 1e6,
			convUn[i].LatencyNS / 1e6,
			convCSE[i].LatencyNS / 1e6,
		})
	}
	return res, nil
}

func rtmComponentsUJ(lr sim.LayerReport) []float64 {
	return []float64{
		lr.Energy.DFGPJ / 1e6,
		lr.Energy.AccumPJ / 1e6,
		lr.Energy.MovementPJ / 1e6,
		lr.Energy.PeripheralsPJ / 1e6,
		lr.Energy.ShiftPJ / 1e6,
	}
}

// onlyConvs drops the final classifier from the conv-layer reports (the
// paper's per-layer axis has the 20 convolutional layers).
func onlyConvs(rep *sim.Report) []sim.LayerReport {
	var out []sim.LayerReport
	for _, lr := range rep.ConvReports() {
		if lr.Plan.Kind == model.KindConv {
			out = append(out, lr)
		}
	}
	return out
}

func onlyConvLayers(net *Network, rep *xbar.Report) []xbar.LayerReport {
	var out []xbar.LayerReport
	for _, lr := range rep.Layers {
		if net.Layers[lr.Index].Kind == model.KindConv {
			out = append(out, lr)
		}
	}
	return out
}
