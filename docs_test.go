package rtmap

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestPackageDocs is the documentation gate CI runs: every internal/
// package must carry its package-level documentation in a doc.go file.
// Keeping the package comment in a dedicated file (rather than whichever
// source file happens to be first) makes it obvious where to update it
// when a package's responsibilities grow.
func TestPackageDocs(t *testing.T) {
	dirs, err := os.ReadDir("internal")
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) < 10 {
		t.Fatalf("only %d internal packages found — running outside the repo root?", len(dirs))
	}
	for _, d := range dirs {
		if !d.IsDir() {
			continue
		}
		docPath := filepath.Join("internal", d.Name(), "doc.go")
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, docPath, nil, parser.ParseComments)
		if err != nil {
			t.Errorf("package internal/%s: missing or unparsable doc.go: %v", d.Name(), err)
			continue
		}
		if f.Doc == nil || strings.TrimSpace(f.Doc.Text()) == "" {
			t.Errorf("package internal/%s: doc.go has no package doc comment", d.Name())
			continue
		}
		if !strings.HasPrefix(f.Doc.Text(), "Package "+f.Name.Name) {
			t.Errorf("package internal/%s: package comment must start %q, got %q",
				d.Name(), "Package "+f.Name.Name, firstLine(f.Doc.Text()))
		}
	}
}

// TestExportedDocsRootAPI audits the public API file: every exported
// symbol rtmap.go declares must have a doc comment (the godoc surface is
// the contract the serving and benchmark tools are written against).
func TestExportedDocsRootAPI(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "rtmap.go", nil, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	if f.Doc == nil {
		t.Error("rtmap.go: missing package doc comment")
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Name.IsExported() && d.Doc == nil {
				t.Errorf("rtmap.go:%d: exported func %s has no doc comment",
					fset.Position(d.Pos()).Line, d.Name.Name)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch sp := spec.(type) {
				case *ast.TypeSpec:
					if sp.Name.IsExported() && sp.Doc == nil && d.Doc == nil {
						t.Errorf("rtmap.go:%d: exported type %s has no doc comment",
							fset.Position(sp.Pos()).Line, sp.Name.Name)
					}
				case *ast.ValueSpec:
					for _, name := range sp.Names {
						if name.IsExported() && sp.Doc == nil && d.Doc == nil {
							t.Errorf("rtmap.go:%d: exported value %s has no doc comment",
								fset.Position(name.Pos()).Line, name.Name)
						}
					}
				}
			}
		}
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
