package rtmap

// One benchmark per evaluation artifact of the paper (DESIGN.md §5):
//
//	Table II rows    → BenchmarkTable2_* (per network and system)
//	Table II #Adds   → BenchmarkTable2_OpCounts_*
//	Fig. 4 (both)    → BenchmarkFigure4
//	§V-A CSE claim   → BenchmarkCSEReductionAverage
//	§V-C movement    → BenchmarkMovementShare
//	§V-C endurance   → BenchmarkEndurance
//
// plus micro-benchmarks of the core primitives. Each iteration performs
// the complete experiment (compile + analyze), so `go test -bench . -benchtime 1x`
// regenerates every artifact once; reported ns/op is the experiment's
// wall time. The experiment benchmarks use DefaultCompileConfig and
// therefore share the process-wide artifact cache: repeated iterations
// (and artifacts that recompile the same network) reuse lowered layers,
// exactly as the production sweep paths do. The *_ColdCache benchmark
// measures the uncached compile.

import (
	"fmt"
	"testing"

	"rtmap/internal/core"
	"rtmap/internal/deepcam"
	"rtmap/internal/dfg"
	"rtmap/internal/sim"
	"rtmap/internal/ternary"
	"rtmap/internal/workload"
	"rtmap/internal/xbar"

	"math/rand/v2"
)

func benchCompileAnalyze(b *testing.B, build func(ModelConfig) *Network, bits int, sparsity float64, cse bool) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		net := build(ModelConfig{ActBits: bits, Sparsity: sparsity, Seed: 1})
		cfg := DefaultCompileConfig()
		cfg.CSE = cse
		comp, err := Compile(net, cfg)
		if err != nil {
			b.Fatal(err)
		}
		rep := Analyze(comp)
		b.ReportMetric(rep.EnergyUJ(), "uJ/inf")
		b.ReportMetric(rep.LatencyMS(), "ms/inf")
		b.ReportMetric(float64(comp.PoolArrays), "arrays")
	}
}

// Table II row: ResNet-18/ImageNet, RTM-AP unroll+CSE (paper: 55.04 µJ,
// 2.46 ms, 49 arrays at 4-bit).
func BenchmarkTable2_ResNet18_RTMAP_4bit(b *testing.B) {
	benchCompileAnalyze(b, BuildResNet18, 4, 0.8, true)
}

// Table II row: ResNet-18 at 8-bit activations (paper: 78.56 µJ, 4.10 ms).
func BenchmarkTable2_ResNet18_RTMAP_8bit(b *testing.B) {
	benchCompileAnalyze(b, BuildResNet18, 8, 0.8, true)
}

// Table II ablation: ResNet-18 with the `unroll` configuration only.
func BenchmarkTable2_ResNet18_RTMAP_Unroll(b *testing.B) {
	benchCompileAnalyze(b, BuildResNet18, 4, 0.8, false)
}

// Table II row: VGG-9/CIFAR10 at sparsity 0.85 (paper: 22.80 µJ, 1.24 ms,
// 4 arrays).
func BenchmarkTable2_VGG9_RTMAP_4bit(b *testing.B) {
	benchCompileAnalyze(b, BuildVGG9, 4, 0.85, true)
}

// Table II row: VGG-9 at sparsity 0.9 (paper: 16.13 µJ, 0.71 ms).
func BenchmarkTable2_VGG9_RTMAP_Sparse90(b *testing.B) {
	benchCompileAnalyze(b, BuildVGG9, 4, 0.9, true)
}

// Table II row: VGG-11/CIFAR10 at sparsity 0.85 (paper: 24.83 µJ, 2.47 ms).
func BenchmarkTable2_VGG11_RTMAP_4bit(b *testing.B) {
	benchCompileAnalyze(b, BuildVGG11, 4, 0.85, true)
}

// Table II baseline rows: DNN+NeuroSim on ResNet-18 (paper: 104.92 µJ,
// 9.56 ms, 41 arrays at 4-bit; 199.90 µJ, 12.2 ms at 8-bit).
func BenchmarkTable2_ResNet18_NeuroSim(b *testing.B) {
	net := BuildResNet18(ModelConfig{ActBits: 4, Sparsity: 0.8, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r4 := xbar.Analyze(net, xbar.Default(), 4)
		r8 := xbar.Analyze(net, xbar.Default(), 8)
		b.ReportMetric(r4.EnergyUJ(), "uJ/inf-4b")
		b.ReportMetric(r8.EnergyUJ(), "uJ/inf-8b")
		b.ReportMetric(r4.LatencyMS(), "ms/inf-4b")
	}
}

// Table II baseline row: DeepCAM on VGG-11 (paper: 0.49 µJ, 0.87 ms,
// 24 arrays).
func BenchmarkTable2_VGG11_DeepCAM(b *testing.B) {
	net := BuildVGG11(ModelConfig{ActBits: 4, Sparsity: 0.85, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := deepcam.Analyze(net, deepcam.Default())
		b.ReportMetric(r.EnergyUJ(), "uJ/inf")
		b.ReportMetric(float64(r.Arrays), "arrays")
	}
}

// Table II "#Adds/Subs" columns (paper ResNet-18: 1499K unroll → 931K CSE).
func BenchmarkTable2_OpCounts_ResNet18(b *testing.B) {
	net := BuildResNet18(ModelConfig{ActBits: 4, Sparsity: 0.8, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		oc, err := CountOps(net)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(oc.Unroll)/1e3, "kAdds-unroll")
		b.ReportMetric(float64(oc.CSE)/1e3, "kAdds-cse")
	}
}

// Fig. 4, both panels: per-layer energy breakdown and latency for
// ResNet-18 under NeuroSim / unroll / unroll+CSE.
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Figure4(DefaultFigure4Options())
		if err != nil {
			b.Fatal(err)
		}
		tot := res.Energy.Totals()
		var cse float64
		for _, layer := range tot {
			cse += layer[2]
		}
		b.ReportMetric(cse, "uJ-cse-total")
		b.ReportMetric(float64(len(res.Energy.Layers)), "layers")
	}
}

// §V-A: "the CSE optimization alone reduces the number of additions by an
// average of 31%".
func BenchmarkCSEReductionAverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		avg, err := CSEReductionAverage(1, SharedCompileCache())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(avg*100, "%reduction")
	}
}

// §V-C: data movement is ~3% of RTM-AP energy vs 41% for the crossbar.
func BenchmarkMovementShare(b *testing.B) {
	net := BuildResNet18(DefaultModelConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rtmShare, xbShare, err := MovementComparison(net, DefaultCompileConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rtmShare*100, "%rtm-move")
		b.ReportMetric(xbShare*100, "%xbar-move")
	}
}

// §V-C: write endurance → ~31-year lifetime.
func BenchmarkEndurance(b *testing.B) {
	net := BuildResNet18(DefaultModelConfig())
	comp, err := Compile(net, DefaultCompileConfig())
	if err != nil {
		b.Fatal(err)
	}
	rep := Analyze(comp)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := Endurance(comp, rep)
		b.ReportMetric(e.LifetimeYears, "years")
		b.ReportMetric(e.MeanRewriteIntervalNS, "ns/rewrite")
	}
}

// Functional AP simulation throughput (word-level machine) on a small
// network, including the bit-exactness check against the reference.
func BenchmarkFunctionalSimTinyCNN(b *testing.B) {
	net := BuildTinyCNN(DefaultModelConfig())
	cfg := DefaultCompileConfig()
	cfg.KeepPrograms = true
	comp, err := Compile(net, cfg)
	if err != nil {
		b.Fatal(err)
	}
	in := workload.Inputs(net.InputShape, 1, 3)[0]
	ref, err := net.ForwardInt(in)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := RunFunctional(comp, in)
		if err != nil {
			b.Fatal(err)
		}
		if !got.Logits().Equal(ref.Logits()) {
			b.Fatal("functional simulation diverged")
		}
	}
}

// Micro-benchmark: greedy signed-pair CSE on a deep-layer weight slice
// (512×9 at 0.8 sparsity — the dominant compile cost).
func BenchmarkDFGBuildCSE(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 2))
	w := ternary.Random(rng, 512, 1, 3, 3, 0.8)
	s := w.Slice(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := dfg.Build(s, dfg.Options{CSE: true})
		if g.NumOps() == 0 {
			b.Fatal("empty graph")
		}
	}
}

// Micro-benchmark: whole-network compilation of VGG-9.
func BenchmarkCompileVGG9(b *testing.B) {
	net := BuildVGG9(ModelConfig{ActBits: 4, Sparsity: 0.85, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Compile(net, core.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// Micro-benchmark: full ResNet-18 lowering with caching disabled — the
// cost of one cold compile (the parallel driver is still active).
func BenchmarkCompileResNet18_ColdCache(b *testing.B) {
	net := BuildResNet18(DefaultModelConfig())
	cfg := DefaultCompileConfig()
	cfg.Cache = nil
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(net, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// Micro-benchmark: ResNet-18 recompilation against a warm artifact cache
// (the config-sweep path of Table II / Fig. 4): every conv layer is
// served content-addressed, so only hashing and the cheap layers remain.
func BenchmarkCompileResNet18_WarmCache(b *testing.B) {
	net := BuildResNet18(DefaultModelConfig())
	cfg := DefaultCompileConfig()
	cfg.Cache = NewCompileCache()
	if _, err := Compile(net, cfg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(net, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	s := cfg.Cache.Stats()
	b.ReportMetric(float64(s.Hits)/float64(max(1, s.Hits+s.Misses))*100, "%hit")
}

// Micro-benchmark: analytic cost model over a compiled ResNet-18.
func BenchmarkAnalyzeResNet18(b *testing.B) {
	net := BuildResNet18(DefaultModelConfig())
	comp, err := Compile(net, DefaultCompileConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := sim.Analyze(comp)
		if rep.TotalLatencyNS <= 0 {
			b.Fatal("empty analysis")
		}
	}
}

// Ablation: the §IV-A optimization ladder on ResNet-18 — accumulate-only
// convention vs unroll vs unroll+CSE (arithmetic-level op counts).
func BenchmarkAblation_OptimizationLadder(b *testing.B) {
	net := BuildResNet18(ModelConfig{ActBits: 4, Sparsity: 0.8, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		oc, err := CountOps(net)
		if err != nil {
			b.Fatal(err)
		}
		comp, err := Compile(net, DefaultCompileConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(comp.TotalNaive())/1e3, "kOps-accumulate")
		b.ReportMetric(float64(oc.Unroll)/1e3, "kOps-unroll")
		b.ReportMetric(float64(oc.CSE)/1e3, "kOps-cse-ideal")
		b.ReportMetric(float64(comp.TotalAddSub())/1e3, "kOps-cse-executed")
	}
}

// Ablation: activation precision sweep (the custom-integer-types lever of
// §IV-A) on VGG-9.
func BenchmarkAblation_ActivationBits(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, bits := range []int{2, 4, 6, 8} {
			net := BuildVGG9(ModelConfig{ActBits: bits, Sparsity: 0.85, Seed: 1})
			comp, err := Compile(net, DefaultCompileConfig())
			if err != nil {
				b.Fatal(err)
			}
			rep := Analyze(comp)
			b.ReportMetric(rep.EnergyUJ(), fmt.Sprintf("uJ-%db", bits))
		}
	}
}

// Ablation: weight sparsity sweep on VGG-11 (Table II evaluates 0.85/0.9;
// energy and op counts should fall with sparsity).
func BenchmarkAblation_Sparsity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, sp := range []float64{0.8, 0.85, 0.9, 0.95} {
			net := BuildVGG11(ModelConfig{ActBits: 4, Sparsity: sp, Seed: 1})
			comp, err := Compile(net, DefaultCompileConfig())
			if err != nil {
				b.Fatal(err)
			}
			rep := Analyze(comp)
			b.ReportMetric(rep.EnergyUJ(), fmt.Sprintf("uJ-s%.0f", sp*100))
		}
	}
}
