package rtmap

import (
	"math"
	"strings"
	"testing"

	"rtmap/internal/model"
	"rtmap/internal/workload"
)

// TestTable2SmallModels drives the complete Table II pipeline — RTM-AP
// rows at 4/8 bits, op counts, the crossbar and DeepCAM baselines, and
// the top-1 agreement measurements — on a small model, so the artifact
// path is exercised even under -short.
func TestTable2SmallModels(t *testing.T) {
	opt := DefaultTable2Options()
	opt.specs = []netSpec{{
		key: "tinycnn", display: "TinyCNN/8x8",
		build:      model.TinyCNN,
		sparsities: []float64{0.5},
		accBuild:   model.TinyCNN,
		deepCAM:    true,
	}}
	opt.AccuracySamples = 4
	opt.CalibSamples = 2
	opt.Cache = NewCompileCache()
	res, err := Table2(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows, want 3 (RTM-AP, crossbar, DeepCAM)", len(res.Rows))
	}
	rtm := res.Rows[0]
	if !(rtm.Energy4UJ > 0) || !(rtm.Latency4MS > 0) || rtm.Arrays < 1 {
		t.Errorf("degenerate RTM-AP row: %+v", rtm)
	}
	if !(rtm.Energy8UJ > rtm.Energy4UJ) {
		t.Errorf("8-bit energy %.3f should exceed 4-bit %.3f", rtm.Energy8UJ, rtm.Energy4UJ)
	}
	if rtm.AddsCSEK > rtm.AddsUnrollK {
		t.Errorf("CSE adds %.1fK exceed unroll %.1fK", rtm.AddsCSEK, rtm.AddsUnrollK)
	}
	if math.IsNaN(rtm.Acc4) || rtm.AccFP != 100 {
		t.Errorf("accuracy columns not measured: %+v", rtm)
	}
	if txt := res.Text(); !strings.Contains(txt, "TinyCNN/8x8") {
		t.Error("rendered table missing the network row")
	}
	if tsv := res.TSV(); len(strings.Split(strings.TrimSpace(tsv), "\n")) != 4 {
		t.Errorf("TSV should have header + 3 rows:\n%s", tsv)
	}
}

// TestFigure4SmallModel exercises both Fig. 4 panels on a small model.
func TestFigure4SmallModel(t *testing.T) {
	opt := DefaultFigure4Options()
	opt.BuildNet = model.TinyCNN
	opt.Cache = NewCompileCache()
	res, err := Figure4(opt)
	if err != nil {
		t.Fatal(err)
	}
	net := model.TinyCNN(model.Config{ActBits: opt.ActBits, Sparsity: opt.Sparsity, Seed: opt.Seed})
	wantConvs := 0
	for _, l := range net.Layers {
		if l.Kind == model.KindConv {
			wantConvs++
		}
	}
	if len(res.Energy.Layers) != wantConvs || len(res.Latency.Layers) != wantConvs {
		t.Fatalf("panel layers %d/%d, want %d", len(res.Energy.Layers), len(res.Latency.Layers), wantConvs)
	}
	for i := range res.Energy.Layers {
		for _, cfgVals := range res.Energy.Values[i] {
			for _, v := range cfgVals {
				if math.IsNaN(v) || v < 0 {
					t.Fatalf("layer %d: bad energy component %v", i, v)
				}
			}
		}
		for _, v := range res.Latency.Values[i] {
			if !(v > 0) {
				t.Fatalf("layer %d: non-positive latency %v", i, v)
			}
		}
	}
}

// TestVerifyCachedReuse proves functional correctness of cached
// artifacts: a second compile served entirely from the cache still
// executes bit-identically to the software reference.
func TestVerifyCachedReuse(t *testing.T) {
	net := BuildTinyCNN(DefaultModelConfig())
	cache := NewCompileCache()
	cfg := DefaultCompileConfig()
	cfg.Cache = cache
	inputs := workload.Inputs(net.InputShape, 2, 19)

	if err := Verify(net, cfg, inputs); err != nil {
		t.Fatalf("cold verify: %v", err)
	}
	cold := cache.Stats()
	if cold.Misses == 0 || cold.Hits != 0 {
		t.Fatalf("cold verify stats %+v", cold)
	}
	if err := Verify(net, cfg, inputs); err != nil {
		t.Fatalf("cached verify: %v", err)
	}
	warm := cache.Stats()
	if warm.Hits != cold.Misses || warm.Misses != cold.Misses {
		t.Fatalf("warm verify stats %+v, want %d hits and no new misses", warm, cold.Misses)
	}
}
