module rtmap

go 1.22
