// Write-endurance and data-movement analysis (§V-C of the paper). RTM
// cells sustain ~10^16 write cycles; because AP execution spreads writes
// across 256 columns and a column is rewritten only every ~hundred
// nanoseconds, the paper estimates a ~31-year lifetime. This example
// reproduces that analysis per network and contrasts the data-movement
// energy shares of RTM-AP and the crossbar baseline.
//
//	go run ./examples/endurance
package main

import (
	"fmt"
	"log"

	"rtmap"
	"rtmap/internal/xbar"
)

func main() {
	log.SetFlags(0)
	specs := []struct {
		name     string
		build    func(rtmap.ModelConfig) *rtmap.Network
		sparsity float64
	}{
		{"VGG-9/CIFAR10", rtmap.BuildVGG9, 0.85},
		{"VGG-11/CIFAR10", rtmap.BuildVGG11, 0.85},
		{"ResNet-18/ImageNet", rtmap.BuildResNet18, 0.8},
	}

	fmt.Printf("%-20s %14s %16s %14s %12s %12s\n",
		"network", "writes/inf", "rewrite (ns)", "lifetime (y)", "move RTM", "move xbar")
	for _, s := range specs {
		net := s.build(rtmap.ModelConfig{ActBits: 4, Sparsity: s.sparsity, Seed: 1})
		log.Printf("compiling %s", s.name)
		comp, err := rtmap.Compile(net, rtmap.DefaultCompileConfig())
		if err != nil {
			log.Fatal(err)
		}
		rep := rtmap.Analyze(comp)
		e := rtmap.Endurance(comp, rep)
		xb := xbar.Analyze(net, xbar.Default(), 4)
		fmt.Printf("%-20s %14.0f %16.1f %14.1f %11.1f%% %11.1f%%\n",
			s.name, e.WritesPerInference, e.MeanRewriteIntervalNS, e.LifetimeYears,
			100*rep.MovementShare(), 100*xb.MovementShare())
	}
	fmt.Println("\npaper (§V-C): rewrite ≈ every 100 ns → ≈31-year lifetime;")
	fmt.Println("partial-result movement ≈3% of RTM-AP energy vs 41% for the crossbar.")
}
