// ResNet-18/ImageNet: the paper's headline experiment. Compiles the
// full-size network for the RTM-AP accelerator at 4- and 8-bit
// activations, prices it, compares with the DNN+NeuroSim crossbar
// baseline, and reports the Table II row plus the §V-C data-movement and
// endurance analyses.
//
//	go run ./examples/resnet18     (takes ~1 minute: two full compiles)
package main

import (
	"fmt"
	"log"

	"rtmap"
	"rtmap/internal/xbar"
)

func main() {
	log.SetFlags(0)

	fmt.Println("ResNet-18 / ImageNet — RTM-AP vs DNN+NeuroSim (Table II headline)")
	fmt.Println("paper: 3× faster, 2.5× lower energy → 7.5× energy-efficiency gain")
	fmt.Println()

	type point struct {
		bits      int
		energyUJ  float64
		latencyMS float64
		arrays    int
	}
	var rtm []point
	var comp4 *rtmap.Compiled
	var rep4 *rtmap.Report
	for _, bits := range []int{4, 8} {
		net := rtmap.BuildResNet18(rtmap.ModelConfig{ActBits: bits, Sparsity: 0.8, Seed: 1})
		log.Printf("compiling %d-bit configuration ...", bits)
		comp, err := rtmap.Compile(net, rtmap.DefaultCompileConfig())
		if err != nil {
			log.Fatal(err)
		}
		rep := rtmap.Analyze(comp)
		rtm = append(rtm, point{bits, rep.EnergyUJ(), rep.LatencyMS(), comp.PoolArrays})
		if bits == 4 {
			comp4, rep4 = comp, rep
		}
	}

	net4 := rtmap.BuildResNet18(rtmap.ModelConfig{ActBits: 4, Sparsity: 0.8, Seed: 1})
	oc, err := rtmap.CountOps(net4)
	if err != nil {
		log.Fatal(err)
	}
	xb4 := xbar.Analyze(net4, xbar.Default(), 4)
	xb8 := xbar.Analyze(net4, xbar.Default(), 8)

	fmt.Printf("%-22s %10s %10s %10s %10s %8s\n", "system", "E4b (uJ)", "E8b (uJ)", "L4b (ms)", "L8b (ms)", "arrays")
	fmt.Printf("%-22s %10.2f %10.2f %10.2f %10.2f %8d\n", "RTM-AP (unroll+CSE)",
		rtm[0].energyUJ, rtm[1].energyUJ, rtm[0].latencyMS, rtm[1].latencyMS, rtm[0].arrays)
	fmt.Printf("%-22s %10.2f %10.2f %10.2f %10.2f %8d\n", "DNN+NeuroSim",
		xb4.EnergyUJ(), xb8.EnergyUJ(), xb4.LatencyMS(), xb8.LatencyMS(), xb4.Arrays)
	fmt.Printf("%-22s %10s %10s\n", "paper RTM-AP", "55.04", "78.56")
	fmt.Printf("%-22s %10s %10s\n", "paper NeuroSim", "104.92", "199.90")
	fmt.Println()

	eR := xb4.EnergyUJ() / rtm[0].energyUJ
	lR := xb4.LatencyMS() / rtm[0].latencyMS
	fmt.Printf("ratios at 4-bit: %.1f× energy, %.1f× latency → %.1f× energy efficiency (paper: 1.9×, 3.9×, 7.5×)\n",
		eR, lR, eR*lR)
	fmt.Printf("adds/subs: %d K unroll → %d K with CSE, a %.0f%% reduction (paper: 1499K → 931K)\n",
		oc.Unroll/1000, oc.CSE/1000, 100*(1-float64(oc.CSE)/float64(oc.Unroll)))

	fmt.Printf("data movement: %.1f%% of RTM-AP energy (paper: ~3%%) vs %.1f%% for the crossbar (paper: 41%%)\n",
		100*rep4.MovementShare(), 100*xb4.MovementShare())

	e := rtmap.Endurance(comp4, rep4)
	fmt.Printf("endurance: busiest cell (%s) rewritten every %.0f ns → %.1f-year lifetime (paper: ~100 ns, ~31 years)\n",
		e.WorstLayer, e.MeanRewriteIntervalNS, e.LifetimeYears)
}
