// VGG on CIFAR10: the Table II sparsity sweep for VGG-9 and VGG-11,
// including the accuracy substitution — top-1 agreement with the
// full-precision teacher — for the exact RTM-AP path and the ADC-noisy
// crossbar path (the paper's accuracy deltas map onto agreement drops).
//
//	go run ./examples/vgg_cifar10    (a couple of minutes with accuracy on)
package main

import (
	"flag"
	"fmt"
	"log"

	"rtmap"
	"rtmap/internal/workload"
	"rtmap/internal/xbar"
)

func main() {
	log.SetFlags(0)
	samples := flag.Int("samples", 30, "agreement evaluation samples (0 = skip)")
	flag.Parse()

	type rowT struct {
		name      string
		sparsity  float64
		energy4   float64
		latency4  float64
		arrays    int
		agreeRTM  float64
		agreeXBar float64
	}
	var rows []rowT

	for _, spec := range []struct {
		name  string
		build func(rtmap.ModelConfig) *rtmap.Network
	}{
		{"VGG-9", rtmap.BuildVGG9},
		{"VGG-11", rtmap.BuildVGG11},
	} {
		for _, sp := range []float64{0.85, 0.9} {
			mc := rtmap.ModelConfig{ActBits: 4, Sparsity: sp, Seed: 1}
			net := spec.build(mc)
			log.Printf("compiling %s at sparsity %.2f", spec.name, sp)
			comp, err := rtmap.Compile(net, rtmap.DefaultCompileConfig())
			if err != nil {
				log.Fatal(err)
			}
			rep := rtmap.Analyze(comp)
			row := rowT{
				name: spec.name, sparsity: sp,
				energy4: rep.EnergyUJ(), latency4: rep.LatencyMS(), arrays: comp.PoolArrays,
			}

			if *samples > 0 {
				log.Printf("  measuring teacher agreement on %d samples", *samples)
				cal := workload.Inputs(net.InputShape, 3, 17)
				if err := rtmap.Calibrate(net, cal); err != nil {
					log.Fatal(err)
				}
				ds, err := workload.Teacher(net, workload.Inputs(net.InputShape, *samples, 23))
				if err != nil {
					log.Fatal(err)
				}
				// RTM-AP computes exactly the integer reference (proved
				// bit-exact by the test suite), so its agreement IS the
				// reference agreement.
				row.agreeRTM, err = ds.Agreement(workload.IntReference(net))
				if err != nil {
					log.Fatal(err)
				}
				row.agreeXBar, err = ds.Agreement(func(in *rtmap.FloatTensor) (*rtmap.IntTensor, error) {
					tr, err := xbar.ForwardADC(net, in, xbar.Default())
					if err != nil {
						return nil, err
					}
					return tr.Logits(), nil
				})
				if err != nil {
					log.Fatal(err)
				}
			}
			rows = append(rows, row)
		}
	}

	fmt.Printf("\n%-8s %6s %10s %10s %7s %12s %12s\n",
		"network", "spars", "E4b (uJ)", "L4b (ms)", "arrays", "agree RTM-AP", "agree xbar")
	for _, r := range rows {
		fmt.Printf("%-8s %6.2f %10.2f %10.2f %7d", r.name, r.sparsity, r.energy4, r.latency4, r.arrays)
		if *samples > 0 {
			fmt.Printf(" %11.1f%% %11.1f%%", r.agreeRTM, r.agreeXBar)
		}
		fmt.Println()
	}
	fmt.Println("\npaper (Table II, 4-bit): VGG-9 s.85: 22.80 uJ / 1.24 ms / 4 arrays; s.90: 16.13 / 0.71")
	fmt.Println("                         VGG-11 s.85: 24.83 uJ / 2.47 ms / 4 arrays; s.90: 18.35 / 1.41")
	fmt.Println("accuracy (paper): RTM-AP retains software accuracy; NeuroSim drops ~3 points on VGG-9.")
}
