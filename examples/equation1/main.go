// Equation (1) walk-through: the paper's worked example of arithmetic
// optimization. The 6×6 ternary MVM "originally involves 19 operations and
// can be reduced to 7 when removing redundant expressions" (§IV-A); this
// example reproduces the exact decomposition — the shared subexpressions
// x7 = x3−x5, x8 = x0−x1, x6 = x7+x8 and the free negated alias y2 = −x7 —
// then shows the generated Table I LUTs that execute it and checks the
// optimized DFG against the plain MVM on random inputs.
//
//	go run ./examples/equation1
package main

import (
	"fmt"
	"math/rand/v2"

	"rtmap/internal/ap"
	"rtmap/internal/dfg"
	"rtmap/internal/ternary"
)

func main() {
	// The matrix of Equation (1) (printed-sign typos corrected so the
	// paper's own substitution is consistent; DESIGN.md §2).
	s := ternary.Slice{Cout: 6, K: 6, M: []int8{
		1, -1, 0, 1, 0, -1,
		0, 0, -1, 1, 0, -1,
		0, 0, 0, -1, 0, 1,
		0, -1, 0, -1, 0, 1,
		1, -1, 0, -1, 0, 0,
		1, -1, -1, 1, 0, -1,
	}}

	fmt.Printf("Equation (1): 6×6 ternary MVM, %d nonzero weights\n", s.NNZ())
	fmt.Printf("unoptimized:  %d accumulate operations (paper: 19)\n", dfg.NaiveAccumulateOps(s))

	un := dfg.Build(s, dfg.Options{})
	fmt.Printf("unrolled:     %d add/sub expressions\n", un.NumOps())

	g := dfg.Build(s, dfg.Options{CSE: true})
	g.AnnotateWidths(0, 15) // 4-bit unsigned activations
	st := g.Statistics()
	fmt.Printf("after CSE:    %d add/sub (paper: 7), %d negated aliases, DFG depth %d, widest value %d bits\n",
		g.NumOps(), st.NegAliases, st.Depth, st.MaxBits)

	// Semantic check against the plain MVM.
	rng := rand.New(rand.NewPCG(1, 9))
	ok := true
	for trial := 0; trial < 1000; trial++ {
		x := make([]int64, 6)
		for i := range x {
			x[i] = rng.Int64N(16)
		}
		got := g.Eval(x)
		for o := 0; o < 6; o++ {
			var want int64
			for k := 0; k < 6; k++ {
				want += int64(s.At(o, k)) * x[k]
			}
			if got[o] != want {
				ok = false
			}
		}
	}
	fmt.Printf("semantics:    %v over 1000 random input vectors\n", map[bool]string{true: "exact", false: "BROKEN"}[ok])

	fmt.Println("\noptimized DFG (Graphviz, cf. Fig. 3e):")
	fmt.Print(g.Dot("equation1"))

	fmt.Println("executing LUTs (generated from truth tables, §IV-C / Table I):")
	for _, l := range []*ap.LUT{ap.AddIn, ap.SubIn, ap.AddOut, ap.SubOut} {
		fmt.Printf("  %-18s %d passes → %d cycles per bit\n", l.Name, len(l.Passes), l.Cycles())
	}
	fmt.Println("\nnegated outputs (y2 = −x7) cost nothing: the accumulation phase")
	fmt.Println("subtracts instead of adds — the paper's \"negative output\" LUTs.")
}
