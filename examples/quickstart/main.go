// Quickstart: build a small ternary network, compile it for the RTM-AP
// accelerator, prove that the compiled AP programs compute exactly what
// the quantized software reference computes, and price the execution.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rtmap"
	"rtmap/internal/workload"
)

func main() {
	log.SetFlags(0)

	// A small CNN with ternary weights (50% sparse) and 4-bit activations.
	net := rtmap.BuildTinyCNN(rtmap.ModelConfig{ActBits: 4, Sparsity: 0.5, Seed: 1})
	fmt.Printf("network: %s, %d ternary weights (%.0f%% zero)\n",
		net.Name, net.TotalWeights(), 100*net.WeightSparsity())

	// Calibrate the LSQ-style activation quantizers on synthetic data.
	cal := workload.Inputs(net.InputShape, 4, 7)
	if err := rtmap.Calibrate(net, cal); err != nil {
		log.Fatal(err)
	}

	// Compile: unroll + constant folding + CSE + bitwidth annotation +
	// column allocation + AP code generation (Fig. 3a of the paper).
	cfg := rtmap.DefaultCompileConfig()
	cfg.KeepPrograms = true // retain executable programs for simulation
	comp, err := rtmap.Compile(net, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled: %d CAM arrays, %d DFG adds/subs\n",
		comp.PoolArrays, comp.TotalAddSub())

	// Functional proof: the AP programs produce bit-identical results to
	// the integer software reference on every layer.
	inputs := workload.Inputs(net.InputShape, 3, 42)
	if err := rtmap.Verify(net, cfg, inputs); err != nil {
		log.Fatal(err)
	}
	fmt.Println("verified: AP execution ≡ software reference (bit-exact, all layers)")

	// And one visible inference end to end.
	tr, err := rtmap.RunFunctional(comp, inputs[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("logits (codes): %v → class %d\n",
		tr.Logits().Data, tr.Logits().ArgmaxInt()[0])

	// Price it with the figures of merit of the paper's §V.
	rep := rtmap.Analyze(comp)
	fmt.Printf("estimated cost: %.3f µJ and %.1f µs per inference\n",
		rep.EnergyUJ(), rep.TotalLatencyNS/1e3)
	fmt.Printf("energy breakdown: DFG %.1f%%, accumulation %.1f%%, shifts %.1f%%, movement %.1f%%, peripherals %.1f%%\n",
		100*rep.Total.DFGPJ/rep.Total.TotalPJ(),
		100*rep.Total.AccumPJ/rep.Total.TotalPJ(),
		100*rep.Total.ShiftPJ/rep.Total.TotalPJ(),
		100*rep.Total.MovementPJ/rep.Total.TotalPJ(),
		100*rep.Total.PeripheralsPJ/rep.Total.TotalPJ())
}
