package rtmap

import (
	"math"
	"testing"

	"rtmap/internal/workload"
	"rtmap/internal/xbar"
)

// TestVerifyTinyNetworks is the end-to-end statement of the paper's
// correctness claim through the public API: compiled AP execution is
// bit-identical to the quantized software reference on every layer.
func TestVerifyTinyNetworks(t *testing.T) {
	for _, build := range []func(ModelConfig) *Network{BuildTinyCNN, BuildTinyResNet} {
		net := build(DefaultModelConfig())
		inputs := workload.Inputs(net.InputShape, 3, 11)
		if err := Verify(net, DefaultCompileConfig(), inputs); err != nil {
			t.Fatalf("%s: %v", net.Name, err)
		}
	}
}

// TestResNet18HeadlineRatios pins the calibrated reproduction of the
// paper's headline: ~3× faster and ~2.5× lower energy than the crossbar
// baseline, i.e. ~7.5× energy-efficiency improvement (Table II). Bands
// are generous — the claim is the shape, not the joules.
func TestResNet18HeadlineRatios(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size compile")
	}
	net := BuildResNet18(ModelConfig{ActBits: 4, Sparsity: 0.8, Seed: 1})
	comp, err := Compile(net, DefaultCompileConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep := Analyze(comp)
	xb := xbar.Analyze(net, xbar.Default(), 4)

	if comp.PoolArrays != 49 {
		t.Errorf("#arrays = %d, want 49 (Table II)", comp.PoolArrays)
	}
	eRatio := xb.EnergyUJ() / rep.EnergyUJ()
	lRatio := xb.LatencyMS() / rep.LatencyMS()
	if eRatio < 1.4 || eRatio > 3.0 {
		t.Errorf("energy ratio %.2f outside [1.4, 3.0] (paper: 1.9×)", eRatio)
	}
	if lRatio < 2.0 || lRatio > 6.0 {
		t.Errorf("latency ratio %.2f outside [2.0, 6.0] (paper: 3.9×)", lRatio)
	}
	if eff := eRatio * lRatio; eff < 3.5 {
		t.Errorf("energy-efficiency product %.1f too low (paper: 7.5×)", eff)
	}
	// Absolute anchors within 2× of the paper's reported values.
	if rep.EnergyUJ() < 27 || rep.EnergyUJ() > 110 {
		t.Errorf("RTM-AP energy %.1f µJ far from paper's 55.04", rep.EnergyUJ())
	}
	if rep.LatencyMS() < 1.2 || rep.LatencyMS() > 5.0 {
		t.Errorf("RTM-AP latency %.2f ms far from paper's 2.46", rep.LatencyMS())
	}
}

// TestMovementShares pins §V-C: RTM-AP moves far less data than the
// crossbar (paper: ~3% vs 41% of energy).
func TestMovementShares(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size compile")
	}
	net := BuildResNet18(DefaultModelConfig())
	rtmShare, xbShare, err := MovementComparison(net, DefaultCompileConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rtmShare > 0.20 {
		t.Errorf("RTM-AP movement share %.2f too high (paper: ~0.03)", rtmShare)
	}
	if xbShare < 0.25 || xbShare > 0.55 {
		t.Errorf("crossbar movement share %.2f outside [0.25, 0.55] (paper: 0.41)", xbShare)
	}
	if xbShare < 2.5*rtmShare {
		t.Errorf("crossbar share (%.2f) should far exceed RTM-AP's (%.2f)", xbShare, rtmShare)
	}
}

// TestCSEReductionBand pins §V-A: CSE alone reduces additions by roughly
// a third (paper: 31% on average). Synthetic random ternary weights share
// somewhat more than trained ones, so the band is wide but must show a
// substantial reduction.
func TestCSEReductionBand(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size op counting")
	}
	avg, err := CSEReductionAverage(1, SharedCompileCache())
	if err != nil {
		t.Fatal(err)
	}
	if avg < 0.20 || avg > 0.75 {
		t.Errorf("average CSE reduction %.2f outside [0.20, 0.75] (paper: 0.31)", avg)
	}
}

// TestEnduranceBand pins §V-C: lifetime far beyond deployment horizons
// (paper: ~31 years from 10^16 cycles and ~100 ns rewrite interval).
func TestEnduranceBand(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size compile")
	}
	net := BuildResNet18(DefaultModelConfig())
	comp, err := Compile(net, DefaultCompileConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep := Analyze(comp)
	e := Endurance(comp, rep)
	if e.LifetimeYears < 5 {
		t.Errorf("lifetime %.1f years implausibly low (paper: ~31)", e.LifetimeYears)
	}
	if e.MeanRewriteIntervalNS <= 0 {
		t.Error("no rewrite interval computed")
	}
}

// TestEightBitScaling pins the Table II 4-bit → 8-bit trends: energy and
// latency both grow, energy by roughly the paper's 1.4×.
func TestEightBitScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size compile")
	}
	run := func(bits int) *Report {
		net := BuildVGG9(ModelConfig{ActBits: bits, Sparsity: 0.85, Seed: 1})
		comp, err := Compile(net, DefaultCompileConfig())
		if err != nil {
			t.Fatal(err)
		}
		return Analyze(comp)
	}
	r4, r8 := run(4), run(8)
	eR := r8.EnergyUJ() / r4.EnergyUJ()
	lR := r8.LatencyMS() / r4.LatencyMS()
	if eR < 1.1 || eR > 2.5 {
		t.Errorf("8b/4b energy ratio %.2f outside [1.1, 2.5] (paper: 1.33)", eR)
	}
	if lR < 1.1 || lR > 3.0 {
		t.Errorf("8b/4b latency ratio %.2f outside [1.1, 3.0] (paper: 1.73)", lR)
	}
}

func TestVGGArraysPublicAPI(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size compile")
	}
	net := BuildVGG11(ModelConfig{ActBits: 4, Sparsity: 0.85, Seed: 1})
	comp, err := Compile(net, DefaultCompileConfig())
	if err != nil {
		t.Fatal(err)
	}
	if comp.PoolArrays != 4 {
		t.Errorf("VGG-11 arrays %d, want 4 (Table II)", comp.PoolArrays)
	}
}

func TestCountOpsConsistency(t *testing.T) {
	net := BuildTinyCNN(DefaultModelConfig())
	oc, err := CountOps(net)
	if err != nil {
		t.Fatal(err)
	}
	if oc.CSE > oc.Unroll {
		t.Errorf("CSE ops %d exceed unroll ops %d", oc.CSE, oc.Unroll)
	}
	if len(oc.PerLayer) == 0 {
		t.Error("no per-layer counts")
	}
	sum := 0
	for _, pl := range oc.PerLayer {
		sum += pl[1]
	}
	if sum != oc.CSE {
		t.Errorf("per-layer CSE sum %d != total %d", sum, oc.CSE)
	}
}

func TestFigure4Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("two full-size compiles")
	}
	res, err := Figure4(DefaultFigure4Options())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Energy.Layers) != 20 {
		t.Fatalf("Fig. 4 has %d layers, want 20", len(res.Energy.Layers))
	}
	if len(res.Latency.Layers) != 20 {
		t.Fatalf("latency panel has %d layers, want 20", len(res.Latency.Layers))
	}
	// §V-B: the deepest layers are slower on RTM-AP than on the crossbar
	// (row under-utilization as Hout·Wout shrinks) while early layers are
	// much faster.
	last := res.Latency.Values[len(res.Latency.Values)-2] // a layer4 conv
	if last[2] <= last[0] {
		t.Errorf("deep layer: unroll+CSE %.3f ms should exceed NeuroSim %.3f ms", last[2], last[0])
	}
	first := res.Latency.Values[1]
	if first[2] >= first[0] {
		t.Errorf("early layer: unroll+CSE %.3f ms should beat NeuroSim %.3f ms", first[2], first[0])
	}
	// CSE strictly improves on unroll in total energy.
	var unroll, cse float64
	for i := range res.Energy.Layers {
		for c, v := range res.Energy.Values[i][1] {
			_ = c
			unroll += v
		}
		for _, v := range res.Energy.Values[i][2] {
			cse += v
		}
	}
	if cse >= unroll {
		t.Errorf("unroll+CSE energy %.1f should be below unroll %.1f", cse, unroll)
	}
	if math.IsNaN(cse) || math.IsNaN(unroll) {
		t.Error("NaN in figure data")
	}
}

// TestShardingPublicAPI exercises the pipeline-sharding surface end to
// end: Partition balances on the analytic latencies, AnalyzePipeline
// collapses to AnalyzeBatch at K=1, and sharded functional replay stays
// bit-identical to RunFunctional.
func TestShardingPublicAPI(t *testing.T) {
	net := BuildTinyResNet(DefaultModelConfig())
	cfg := DefaultCompileConfig()
	cfg.KeepPrograms = true
	comp, err := Compile(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := Analyze(comp)

	one, err := Partition(comp, rep, 1)
	if err != nil {
		t.Fatal(err)
	}
	prOne, err := AnalyzePipeline(comp, rep, one)
	if err != nil {
		t.Fatal(err)
	}
	batch := AnalyzeBatch(rep, 8)
	pipe := AnalyzePipelineBatch(prOne, 8)
	if math.Abs(batch.LatencyNS-pipe.LatencyNS) > 1e-9*batch.LatencyNS {
		t.Errorf("K=1 pipeline batch %g ns != AnalyzeBatch %g ns", pipe.LatencyNS, batch.LatencyNS)
	}

	sp, err := Partition(comp, rep, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Stages) != 3 {
		t.Fatalf("%d stages, want 3", len(sp.Stages))
	}
	pr, err := AnalyzePipeline(comp, rep, sp)
	if err != nil {
		t.Fatal(err)
	}
	if pr.BottleneckNS <= 0 || pr.SteadyInfersPerSec() <= 0 {
		t.Fatalf("degenerate pipeline report %+v", pr)
	}

	in := workload.Inputs(net.InputShape, 1, 5)[0]
	want, err := RunFunctional(comp, in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunFunctionalSharded(comp, sp, in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Outputs {
		if !got.Outputs[i].Equal(want.Outputs[i]) {
			t.Fatalf("layer %d: sharded replay diverges from RunFunctional", i)
		}
	}
}

// TestRunFunctionalBatchPublicAPI states the execution engine's
// contract through the public API: RunFunctionalBatch is bit-identical
// per item to RunFunctional and to the retained baseline interpreter.
func TestRunFunctionalBatchPublicAPI(t *testing.T) {
	net := BuildTinyResNet(DefaultModelConfig())
	cfg := DefaultCompileConfig()
	cfg.KeepPrograms = true
	comp, err := Compile(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ins := workload.Inputs(net.InputShape, 4, 19)
	trs, err := RunFunctionalBatch(comp, ins)
	if err != nil {
		t.Fatal(err)
	}
	for i, in := range ins {
		serial, err := RunFunctional(comp, in)
		if err != nil {
			t.Fatal(err)
		}
		base, err := RunFunctionalBaseline(comp, in)
		if err != nil {
			t.Fatal(err)
		}
		for l := range net.Layers {
			if !trs[i].Outputs[l].Equal(serial.Outputs[l]) {
				t.Fatalf("item %d layer %d: batch != serial", i, l)
			}
			if !trs[i].Outputs[l].Equal(base.Outputs[l]) {
				t.Fatalf("item %d layer %d: batch != baseline interpreter", i, l)
			}
		}
	}
}
